package stache

import (
	"fmt"
	"testing"

	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/typhoon"
	"github.com/tempest-sim/tempest/internal/vm"
)

// stressRand is a tiny deterministic PRNG for workload construction.
type stressRand struct{ s uint64 }

func (r *stressRand) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// TestRandomizedRaceFreeStress runs many rounds of a randomized but
// data-race-free workload: each round a random owner is chosen per
// block; owners write, everyone reads after a barrier. After the run the
// coherence invariants must hold and every block must carry its owner's
// last value.
func TestRandomizedRaceFreeStress(t *testing.T) {
	const (
		nodes  = 6
		blocks = 48
		rounds = 12
	)
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			m := machine.New(machine.Config{Nodes: nodes, CacheSize: 4096, Seed: seed})
			st := New()
			// Exercise replacement too on one of the seeds.
			if seed == 42 {
				st.maxPages = 2
			}
			typhoon.New(m, st)
			seg := m.AllocShared("stress", blocks*32, vm.RoundRobin{}, 0)

			// Precompute the deterministic schedule so every node agrees.
			owner := make([][]int, rounds)
			val := make([][]uint64, rounds)
			r := &stressRand{s: seed}
			for rd := 0; rd < rounds; rd++ {
				owner[rd] = make([]int, blocks)
				val[rd] = make([]uint64, blocks)
				for b := 0; b < blocks; b++ {
					owner[rd][b] = int(r.next() % nodes)
					val[rd][b] = r.next()
				}
			}

			blockVA := func(b int) mem.VA { return seg.At(uint64(b * 32)) }

			res, err := m.Run(func(p *machine.Proc) {
				for rd := 0; rd < rounds; rd++ {
					for b := 0; b < blocks; b++ {
						if owner[rd][b] == p.ID() {
							p.WriteU64(blockVA(b), val[rd][b])
						}
					}
					p.Barrier()
					// Everyone reads a deterministic subset.
					for b := p.ID(); b < blocks; b += 3 {
						if got := p.ReadU64(blockVA(b)); got != val[rd][b] {
							t.Errorf("round %d block %d: node %d read %d, want %d",
								rd, b, p.ID(), got, val[rd][b])
						}
					}
					p.Barrier()
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			if res.Counters.Get("stache.remote_faults") == 0 {
				t.Error("stress produced no remote faults")
			}
		})
	}
}

// TestManyNodesSingleHotBlock hammers one block from 16 nodes with
// interleaved reads and writes and relies on the invariant checker.
func TestManyNodesSingleHotBlock(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 16, CacheSize: 4096, Seed: 3})
	st := New()
	typhoon.New(m, st)
	seg := m.AllocShared("hot", mem.PageSize, vm.OnNode{Node: 0}, 0)
	_, err := m.Run(func(p *machine.Proc) {
		for i := 0; i < 30; i++ {
			if (i+p.ID())%4 == 0 {
				p.WriteU64(seg.At(0), uint64(p.ID()*1000+i))
			} else {
				p.ReadU64(seg.At(0))
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestFeatureInteractionTorture combines every Stache feature — budgeted
// replacement, migratory detection, prefetch, and check-in — under a
// randomized race-free workload, relying on value checks and the
// invariant checker to catch interaction bugs.
func TestFeatureInteractionTorture(t *testing.T) {
	const (
		nodes  = 5
		blocks = 40
		rounds = 10
	)
	for _, seed := range []uint64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			m := machine.New(machine.Config{Nodes: nodes, CacheSize: 4096, Seed: seed})
			st := New(WithMaxPages(3), WithMigratory())
			typhoon.New(m, st)
			seg := m.AllocShared("torture", blocks*32, vm.RoundRobin{}, 0)

			owner := make([][]int, rounds)
			val := make([][]uint64, rounds)
			r := &stressRand{s: seed * 977}
			for rd := 0; rd < rounds; rd++ {
				owner[rd] = make([]int, blocks)
				val[rd] = make([]uint64, blocks)
				for b := 0; b < blocks; b++ {
					owner[rd][b] = int(r.next() % nodes)
					val[rd][b] = r.next()
				}
			}
			blockVA := func(b int) mem.VA { return seg.At(uint64(b * 32)) }

			_, err := m.Run(func(p *machine.Proc) {
				pr := &stressRand{s: seed + uint64(p.ID())*131}
				for rd := 0; rd < rounds; rd++ {
					for b := 0; b < blocks; b++ {
						if owner[rd][b] == p.ID() {
							p.WriteU64(blockVA(b), val[rd][b])
						}
					}
					p.Barrier()
					for b := p.ID(); b < blocks; b += 2 {
						switch pr.next() % 4 {
						case 0:
							st.Prefetch(p, blockVA(b))
							p.Compute(20)
							fallthrough
						case 1, 2:
							if got := p.ReadU64(blockVA(b)); got != val[rd][b] {
								t.Errorf("round %d block %d: node %d read %d, want %d",
									rd, b, p.ID(), got, val[rd][b])
							}
						case 3:
							if got := p.ReadU64(blockVA(b)); got != val[rd][b] {
								t.Errorf("round %d block %d: node %d read %d, want %d",
									rd, b, p.ID(), got, val[rd][b])
							}
							st.CheckIn(p, blockVA(b))
						}
					}
					p.Barrier()
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
		})
	}
}
