package stache

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/typhoon"
	"github.com/tempest-sim/tempest/internal/vm"
)

func TestCheckInReturnsDirtyBlock(t *testing.T) {
	m, st := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	res := run(t, m, st, func(p *machine.Proc) {
		if p.ID() == 1 {
			p.WriteU64(seg.At(0), 321) // node 1 owns the block
			st.CheckIn(p, seg.At(0))
			p.Ctx.Sleep(100)
		}
		p.Barrier()
		if p.ID() == 0 {
			// The home read must now be LOCAL: no recall round trip.
			t0 := p.Ctx.Time()
			if got := p.ReadU64(seg.At(0)); got != 321 {
				t.Errorf("value = %d", got)
			}
			if d := p.Ctx.Time() - t0; d > 60 {
				t.Errorf("home read after check-in cost %d; recall not avoided", d)
			}
		}
	})
	if res.Counters.Get("stache.checkins") != 1 {
		t.Errorf("checkins = %d", res.Counters.Get("stache.checkins"))
	}
}

func TestCheckInDropsCleanCopy(t *testing.T) {
	m, st := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	run(t, m, st, func(p *machine.Proc) {
		if p.ID() == 0 {
			p.WriteU64(seg.At(0), 5)
		}
		p.Barrier()
		if p.ID() == 1 {
			p.ReadU64(seg.At(0)) // RO copy
			st.CheckIn(p, seg.At(0))
			p.Ctx.Sleep(100)
		}
		p.Barrier()
		if p.ID() == 0 {
			// Writing at home needs no invalidation round trip now.
			t0 := p.Ctx.Time()
			p.WriteU64(seg.At(0), 6)
			if d := p.Ctx.Time() - t0; d > 80 {
				t.Errorf("home write after check-in cost %d; sharer not dropped", d)
			}
		}
	})
}

func TestCheckInOnAbsentBlockIsHarmless(t *testing.T) {
	m, st := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	run(t, m, st, func(p *machine.Proc) {
		if p.ID() == 1 {
			st.CheckIn(p, seg.At(0)) // no copy at all
			p.Ctx.Sleep(50)
			if got := p.ReadU64(seg.At(0)); got != 0 {
				t.Errorf("value = %d", got)
			}
			st.CheckIn(p, seg.At(64)) // page mapped, block Invalid
			p.Ctx.Sleep(50)
		}
	})
}

// TestMigratoryCollapsesRMWRoundTrips: with migratory detection on, a
// ping-ponging read-modify-write block costs one round trip per handoff
// instead of two.
func TestMigratoryCollapsesRMWRoundTrips(t *testing.T) {
	exec := func(opts ...Option) (cycles uint64, grants uint64) {
		m := machine.New(machine.Config{Nodes: 2, CacheSize: 4096, Seed: 1})
		st := New(opts...)
		typhoon.New(m, st)
		seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
		res, err := m.Run(func(p *machine.Proc) {
			for i := 0; i < 20; i++ {
				if i%2 == p.ID() {
					v := p.ReadU64(seg.At(0))
					p.WriteU64(seg.At(0), v+1)
				}
				p.Barrier()
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if got := apps2ReadBack(m, seg.At(0)); got != 20 {
			t.Fatalf("counter = %d, want 20", got)
		}
		return uint64(res.ROICycles + res.Cycles), res.Counters.Get("stache.migratory_grants")
	}
	plainCycles, plainGrants := exec()
	migCycles, migGrants := exec(WithMigratory())
	if plainGrants != 0 {
		t.Fatalf("baseline recorded %d migratory grants", plainGrants)
	}
	if migGrants == 0 {
		t.Fatal("migratory detection never fired")
	}
	if migCycles >= plainCycles {
		t.Errorf("migratory (%d) not faster than plain (%d)", migCycles, plainCycles)
	}
}

// TestMigratoryDemotesOnReadSharing: when a migratory block turns out to
// be read-shared, the protocol stops granting exclusively and stays
// correct.
func TestMigratoryDemotesOnReadSharing(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 4, CacheSize: 4096, Seed: 1})
	st := New(WithMigratory())
	typhoon.New(m, st)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	vals := make([]uint64, 4)
	_, err := m.Run(func(p *machine.Proc) {
		// Phase 1: establish the migratory pattern on node 1.
		if p.ID() == 1 {
			for i := 0; i < 3; i++ {
				v := p.ReadU64(seg.At(0))
				p.WriteU64(seg.At(0), v+1)
				p.Barrier()
			}
		} else {
			for i := 0; i < 3; i++ {
				p.Barrier()
			}
		}
		p.Barrier()
		// Phase 2: pure read sharing by everyone, repeatedly.
		for i := 0; i < 5; i++ {
			vals[p.ID()] = p.ReadU64(seg.At(0))
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for n, v := range vals {
		if v != 3 {
			t.Errorf("node %d read %d, want 3", n, v)
		}
	}
}

// apps2ReadBack reads a coherent value without importing internal/apps
// (which would create an import cycle with this package's tests).
func apps2ReadBack(m *machine.Machine, va mem.VA) uint64 {
	home := m.VM.Home(va)
	pa, _, _ := m.VM.Translate(home, va)
	if m.Mems[home].Tag(pa) == mem.TagReadWrite {
		return m.Mems[home].ReadU64(pa)
	}
	for n := 0; n < m.Cfg.Nodes; n++ {
		if n == home {
			continue
		}
		if pa2, _, ok := m.VM.Translate(n, va); ok && m.Mems[n].Tag(pa2) == mem.TagReadWrite {
			return m.Mems[n].ReadU64(pa2)
		}
	}
	return m.Mems[home].ReadU64(pa)
}
