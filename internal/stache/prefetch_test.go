package stache

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/vm"
)

func TestPrefetchHidesLatency(t *testing.T) {
	m, st := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	res := run(t, m, st, func(p *machine.Proc) {
		if p.ID() == 0 {
			p.WriteU64(seg.At(0), 7)
			p.WriteU64(seg.At(64), 8)
		}
		p.Barrier()
		if p.ID() != 1 {
			return
		}
		// Map the page with a demand access, then prefetch another
		// block, overlap with compute, and read it.
		p.ReadU64(seg.At(128))
		st.Prefetch(p, seg.At(64))
		p.Compute(400) // plenty of time for the data to arrive
		t0 := p.Ctx.Time()
		if got := p.ReadU64(seg.At(64)); got != 8 {
			t.Errorf("prefetched value = %d", got)
		}
		// The access should be a plain local miss (plus maybe TLB).
		if d := p.Ctx.Time() - t0; d > 60 {
			t.Errorf("prefetched read cost %d cycles; latency not hidden", d)
		}
	})
	if res.Counters.Get("stache.prefetches") != 1 {
		t.Errorf("prefetches = %d", res.Counters.Get("stache.prefetches"))
	}
	if res.Counters.Get("stache.prefetch_fills") != 1 {
		t.Errorf("prefetch fills = %d", res.Counters.Get("stache.prefetch_fills"))
	}
}

func TestDemandFaultJoinsOutstandingPrefetch(t *testing.T) {
	m, st := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	run(t, m, st, func(p *machine.Proc) {
		if p.ID() == 0 {
			p.WriteU64(seg.At(64), 9)
		}
		p.Barrier()
		if p.ID() != 1 {
			return
		}
		p.ReadU64(seg.At(128)) // map the page
		st.Prefetch(p, seg.At(64))
		// Read immediately: the fault must join the in-flight prefetch
		// rather than issue a second request.
		if got := p.ReadU64(seg.At(64)); got != 9 {
			t.Errorf("value = %d", got)
		}
	})
}

func TestPrefetchOnUnmappedPageIsIgnored(t *testing.T) {
	m, st := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	res := run(t, m, st, func(p *machine.Proc) {
		if p.ID() == 1 {
			st.Prefetch(p, seg.At(0)) // no stache page yet
			p.Ctx.Sleep(100)
			if got := p.ReadU64(seg.At(0)); got != 0 {
				t.Errorf("value = %d", got)
			}
		}
	})
	if res.Counters.Get("stache.prefetches") != 0 {
		t.Errorf("prefetch on unmapped page should be ignored, got %d",
			res.Counters.Get("stache.prefetches"))
	}
}

func TestPrefetchWriteAfterFillUpgrades(t *testing.T) {
	m, st := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	run(t, m, st, func(p *machine.Proc) {
		if p.ID() == 0 {
			p.WriteU64(seg.At(64), 5)
		}
		p.Barrier()
		if p.ID() != 1 {
			return
		}
		p.ReadU64(seg.At(128))
		st.Prefetch(p, seg.At(64))
		p.Compute(400)
		p.WriteU64(seg.At(64), 6) // RO prefetched copy: upgrade path
		if got := p.ReadU64(seg.At(64)); got != 6 {
			t.Errorf("value = %d", got)
		}
	})
}

func TestPrefetchSurvivesPageReplacement(t *testing.T) {
	// Prefetch a block, then immediately thrash the stache so the page
	// is replaced while the data is in flight. The arrival must drop the
	// residency cleanly (no panic, invariants hold).
	m, st := newM(t, 2, WithMaxPages(1))
	seg := m.AllocShared("x", 4*mem.PageSize, vm.OnNode{Node: 0}, 0)
	run(t, m, st, func(p *machine.Proc) {
		if p.ID() != 1 {
			return
		}
		p.ReadU64(seg.At(0)) // map page 0
		st.Prefetch(p, seg.At(64))
		// Demand-touch another page: with a one-page budget this
		// replaces page 0 while the prefetch may still be in flight.
		p.ReadU64(seg.At(mem.PageSize))
		p.ReadU64(seg.At(2 * mem.PageSize))
		p.Ctx.Sleep(300)
		// Re-touch the prefetched block through a fresh page.
		if got := p.ReadU64(seg.At(64)); got != 0 {
			t.Errorf("value = %d", got)
		}
	})
}
