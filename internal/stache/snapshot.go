package stache

import (
	"hash/fnv"
	"sort"

	"github.com/tempest-sim/tempest/internal/mem"
)

// digestWriter folds words into an FNV-1a hash; the protocol state
// digests share it so every package hashes the same way.
type digestWriter struct {
	h interface {
		Write([]byte) (int, error)
		Sum64() uint64
	}
	buf [8]byte
}

func newDigestWriter() *digestWriter { return &digestWriter{h: fnv.New64a()} }

func (d *digestWriter) word(v uint64) {
	for i := 0; i < 8; i++ {
		d.buf[i] = byte(v >> (8 * i))
	}
	d.h.Write(d.buf[:])
}

func (d *digestWriter) sum() uint64 { return d.h.Sum64() }

// sortedVAs returns m's keys in address order (map iteration order must
// never reach a digest).
func sortedVAs[V any](m map[mem.VA]V) []mem.VA {
	out := make([]mem.VA, 0, len(m))
	for va := range m {
		out = append(out, va)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StateDigest folds the protocol's full coherence state — every home
// page's per-block directory (state, owner, sharers, busy-transaction
// fields) and every node's requester-side state (pending fault, stache
// page FIFO, outstanding writebacks, orphans, prefetches) — into one
// hash. Equal digests mean equal protocol state; the conformance suite
// records it in a trace's footer and compares it on replay. Call only
// while the machine is not running.
func (st *Protocol) StateDigest() uint64 {
	d := newDigestWriter()
	// Home-side: directory entries, in (segment, page, block) order.
	for _, seg := range st.m.VM.Segments() {
		for i := 0; i < seg.Pages(); i++ {
			va := seg.Base.PageBase() + mem.VA(i*mem.PageSize)
			home := st.m.VM.Home(va)
			if home < 0 {
				continue
			}
			pte, ok := st.m.VM.Table(home).Lookup(va.VPN())
			if !ok {
				continue
			}
			dir, ok := st.m.Mems[home].Frame(pte.PA).User.(*homeDir)
			if !ok {
				continue
			}
			d.word(uint64(va))
			for bi := range dir.blocks {
				b := &dir.blocks[bi]
				d.word(uint64(b.state)<<32 | uint64(uint16(b.owner))<<16 | uint64(b.pend)<<8 |
					uint64(boolBit(b.migratory))<<1 | uint64(boolBit(b.pendUpgrade)))
				d.word(uint64(uint16(b.pendReq))<<16 | uint64(uint16(b.pendOwner)))
				for _, s := range b.sharers.members() {
					d.word(uint64(s) + 1)
				}
				d.word(^uint64(0)) // sharer/waiter separator
				for _, s := range b.waiting.members() {
					d.word(uint64(s) + 1)
				}
			}
		}
	}
	// Requester-side: per-node caching state.
	for node, ns := range st.per {
		d.word(uint64(node))
		d.word(uint64(boolBit(ns.pendingValid))<<2 | uint64(boolBit(ns.pendingWrite))<<1 |
			uint64(boolBit(ns.pendingUpgrade)))
		d.word(uint64(ns.pendingVA))
		d.word(uint64(boolBit(ns.homePendingValid)))
		for _, va := range ns.fifo {
			d.word(uint64(va))
		}
		d.word(^uint64(0))
		for _, va := range sortedVAs(ns.wbOutstanding) {
			d.word(uint64(va))
		}
		d.word(^uint64(0))
		for _, va := range sortedVAs(ns.orphans) {
			d.word(uint64(va)<<8 | uint64(uint8(ns.orphans[va])))
		}
		d.word(^uint64(0))
		for _, va := range sortedVAs(ns.prefetching) {
			d.word(uint64(va))
		}
	}
	return d.sum()
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
