package stache

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/typhoon"
	"github.com/tempest-sim/tempest/internal/vm"
)

func newM(t *testing.T, nodes int, opts ...Option) (*machine.Machine, *Protocol) {
	t.Helper()
	m := machine.New(machine.Config{Nodes: nodes, CacheSize: 4096, Seed: 1})
	st := New(opts...)
	typhoon.New(m, st)
	return m, st
}

func run(t *testing.T, m *machine.Machine, st *Protocol, body func(p *machine.Proc)) machine.Result {
	t.Helper()
	res, err := m.Run(body)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("coherence invariant violated: %v", err)
	}
	return res
}

// TestHandlerBudgetsMatchPaper pins the best-case NP path lengths to the
// paper's §6 numbers: 14 instructions to request a block, 30 to respond
// at the home, 20 at data arrival.
func TestHandlerBudgetsMatchPaper(t *testing.T) {
	request := sim.Time(costRequestExtra) + typhoon.TagOpCycles + sendCost(1, 0)
	if request != 14 {
		t.Errorf("request path = %d instructions, want 14", request)
	}
	// Home response: 2 directory references (hits), home tag write,
	// block read, data reply send.
	homeResp := sim.Time(costHomeRespExtra) + 2 + typhoon.TagOpCycles +
		typhoon.BlockXferCycles + sendCost(1, 32)
	if homeResp != 30 {
		t.Errorf("home response path = %d instructions, want 30", homeResp)
	}
	arrive := sim.Time(costDataArriveExtra) + typhoon.BlockXferCycles +
		typhoon.TagOpCycles + typhoon.ResumeCycles
	if arrive != 20 {
		t.Errorf("data arrival path = %d instructions, want 20", arrive)
	}
}

func TestRemoteReadThroughStache(t *testing.T) {
	m, st := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	var got uint64
	res := run(t, m, st, func(p *machine.Proc) {
		if p.ID() == 0 {
			p.WriteU64(seg.At(0), 4242)
		}
		p.Barrier()
		if p.ID() == 1 {
			got = p.ReadU64(seg.At(0))
		}
	})
	if got != 4242 {
		t.Fatalf("remote read = %d, want 4242", got)
	}
	if res.Counters.Get("stache.page_faults") == 0 {
		t.Error("no stache page fault recorded")
	}
	if res.Counters.Get("stache.gets") == 0 {
		t.Error("no GETS recorded")
	}
}

func TestSecondAccessToStachedBlockIsLocal(t *testing.T) {
	m, st := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	run(t, m, st, func(p *machine.Proc) {
		if p.ID() == 0 {
			p.WriteU64(seg.At(0), 1)
			p.WriteU64(seg.At(1024), 2)
		}
		p.Barrier()
		if p.ID() != 1 {
			return
		}
		p.ReadU64(seg.At(0))
		t0 := p.Ctx.Time()
		p.ReadU64(seg.At(8)) // same block: pure cache hit
		if d := p.Ctx.Time() - t0; d != 1 {
			t.Errorf("same-block reread cost %d, want 1", d)
		}
		// Evict the line by touching four conflicting local private
		// blocks, then reread: the stache page satisfies it locally.
		p.ReadU64(seg.At(1024)) // different block, same stache page
		t1 := p.Ctx.Time()
		p.ReadU64(seg.At(1024 + 8))
		if d := p.Ctx.Time() - t1; d != 1 {
			t.Errorf("stached block reread cost %d, want 1", d)
		}
	})
}

func TestCapacityMissSatisfiedFromStache(t *testing.T) {
	// CPU cache 4 KB; a 5-block conflict set forces an eviction; the
	// evicted block must refill from the LOCAL stache page (29 cycles),
	// not from the remote home.
	m, st := newM(t, 2)
	seg := m.AllocShared("x", 8*mem.PageSize, vm.OnNode{Node: 0}, 0)
	run(t, m, st, func(p *machine.Proc) {
		if p.ID() != 1 {
			return
		}
		// 5 addresses, 1024 bytes apart: same cache set, 3 stache pages.
		for i := 0; i < 5; i++ {
			p.ReadU64(seg.At(uint64(i * 1024)))
		}
		t0 := p.Ctx.Time()
		p.ReadU64(seg.At(0)) // evicted from CPU cache, still stached
		d := p.Ctx.Time() - t0
		if d != 1+29 && d != 1+29+25 { // possibly a TLB miss too
			t.Errorf("capacity reread cost %d, want 30 (or 55 with TLB miss)", d)
		}
	})
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m, st := newM(t, 4)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	vals := make([]uint64, 4)
	res := run(t, m, st, func(p *machine.Proc) {
		p.ReadU64(seg.At(0)) // all nodes share the block
		p.Barrier()
		if p.ID() == 2 {
			p.WriteU64(seg.At(0), 1234) // invalidates 0,1,3
		}
		p.Barrier()
		vals[p.ID()] = p.ReadU64(seg.At(0))
	})
	for n, v := range vals {
		if v != 1234 {
			t.Errorf("node %d read %d, want 1234", n, v)
		}
	}
	if res.Counters.Get("stache.invals_sent") == 0 {
		t.Error("no invalidations sent")
	}
}

func TestUpgradePathUsesUpgAck(t *testing.T) {
	m, st := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	res := run(t, m, st, func(p *machine.Proc) {
		if p.ID() == 1 {
			p.ReadU64(seg.At(0))      // RO copy
			p.WriteU64(seg.At(0), 10) // upgrade
			if got := p.ReadU64(seg.At(0)); got != 10 {
				t.Errorf("read after upgrade = %d", got)
			}
		}
	})
	if res.Counters.Get("stache.upgrades") == 0 {
		t.Error("no upgrade request recorded")
	}
}

func TestHomeReadRecallsRemoteOwner(t *testing.T) {
	m, st := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	var got uint64
	res := run(t, m, st, func(p *machine.Proc) {
		if p.ID() == 1 {
			p.WriteU64(seg.At(0), 77) // node 1 owns the block
		}
		p.Barrier()
		if p.ID() == 0 {
			got = p.ReadU64(seg.At(0)) // home fault: downgrade recall
		}
		p.Barrier()
		if p.ID() == 1 {
			// Owner kept a read-only copy: reread is a local fill.
			t0 := p.Ctx.Time()
			p.ReadU64(seg.At(0))
			if d := p.Ctx.Time() - t0; d > 60 {
				t.Errorf("downgraded owner reread cost %d, want local", d)
			}
		}
	})
	if got != 77 {
		t.Fatalf("home read %d, want 77", got)
	}
	if res.Counters.Get("stache.home_faults") == 0 {
		t.Error("no home fault recorded")
	}
}

func TestHomeWriteInvalidatesSharers(t *testing.T) {
	m, st := newM(t, 3)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	vals := make([]uint64, 3)
	run(t, m, st, func(p *machine.Proc) {
		p.ReadU64(seg.At(0))
		p.Barrier()
		if p.ID() == 0 {
			p.WriteU64(seg.At(0), 55) // home write fault: invalidate 1,2
		}
		p.Barrier()
		vals[p.ID()] = p.ReadU64(seg.At(0))
	})
	for n, v := range vals {
		if v != 55 {
			t.Errorf("node %d read %d, want 55", n, v)
		}
	}
}

func TestSharerOverflowBeyondSixPointers(t *testing.T) {
	m, st := newM(t, 9)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	vals := make([]uint64, 9)
	run(t, m, st, func(p *machine.Proc) {
		if p.ID() == 0 {
			p.WriteU64(seg.At(0), 7)
		}
		p.Barrier()
		p.ReadU64(seg.At(0)) // 8 remote sharers: overflow past 6 pointers
		p.Barrier()
		if p.ID() == 3 {
			p.WriteU64(seg.At(0), 8) // must invalidate all 8
		}
		p.Barrier()
		vals[p.ID()] = p.ReadU64(seg.At(0))
	})
	for n, v := range vals {
		if v != 8 {
			t.Errorf("node %d read %d, want 8", n, v)
		}
	}
}

func TestContendedBlockNacksAndConverges(t *testing.T) {
	m, st := newM(t, 8)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	res := run(t, m, st, func(p *machine.Proc) {
		// Everyone hammers the same block with writes, unsynchronised.
		for i := 0; i < 10; i++ {
			p.WriteU64(seg.At(8*uint64(p.ID())), uint64(i))
			p.Touch(seg.At(0), i%2 == 0)
		}
		p.Barrier()
	})
	_ = res // invariants checked in run()
}

func TestPageReplacementWritesBackAndRefetches(t *testing.T) {
	// Node 1's stache budget: 4 pages. Touching 6 remote pages forces
	// FIFO replacement; modified data must survive at the home.
	m, st := newM(t, 2, WithMaxPages(4))
	seg := m.AllocShared("big", 6*mem.PageSize, vm.OnNode{Node: 0}, 0)
	res := run(t, m, st, func(p *machine.Proc) {
		if p.ID() != 1 {
			return
		}
		for pg := 0; pg < 6; pg++ {
			p.WriteU64(seg.At(uint64(pg*mem.PageSize)), uint64(100+pg))
		}
		// Revisit: the early pages were replaced; values must round-trip
		// through the home.
		for pg := 0; pg < 6; pg++ {
			if got := p.ReadU64(seg.At(uint64(pg * mem.PageSize))); got != uint64(100+pg) {
				t.Errorf("page %d value = %d, want %d", pg, got, 100+pg)
			}
		}
	})
	if res.Counters.Get("stache.replacements") == 0 {
		t.Error("no page replacements recorded")
	}
	if res.Counters.Get("stache.wb_dirty_blocks") == 0 {
		t.Error("no dirty writebacks recorded")
	}
}

func TestSequentialEquivalence(t *testing.T) {
	const nodes, elems = 4, 256
	m, st := newM(t, nodes)
	data := m.AllocShared("data", elems*8, vm.RoundRobin{}, 0)
	partial := m.AllocShared("partial", nodes*mem.PageSize, vm.RoundRobin{}, 0)
	var total uint64
	run(t, m, st, func(p *machine.Proc) {
		for i := p.ID(); i < elems; i += nodes {
			p.WriteU64(data.At(uint64(i*8)), uint64(i))
		}
		p.Barrier()
		var sum uint64
		for i := (p.ID() + 1) % nodes; i < elems; i += nodes {
			sum += p.ReadU64(data.At(uint64(i * 8)))
		}
		p.WriteU64(partial.At(uint64(p.ID()*mem.PageSize)), sum)
		p.Barrier()
		if p.ID() == 0 {
			for n := 0; n < nodes; n++ {
				total += p.ReadU64(partial.At(uint64(n * mem.PageSize)))
			}
		}
	})
	want := uint64(elems * (elems - 1) / 2)
	if total != want {
		t.Fatalf("parallel sum = %d, want %d", total, want)
	}
}

func TestProducerConsumerPingPong(t *testing.T) {
	m, st := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	const rounds = 20
	run(t, m, st, func(p *machine.Proc) {
		for r := 0; r < rounds; r++ {
			if p.ID() == r%2 {
				p.WriteU64(seg.At(0), uint64(r))
			}
			p.Barrier()
			if got := p.ReadU64(seg.At(0)); got != uint64(r) {
				t.Errorf("round %d: node %d read %d", r, p.ID(), got)
			}
			p.Barrier()
		}
	})
}

func TestFalseSharingStaysCoherent(t *testing.T) {
	// Two nodes write adjacent words in the same block.
	m, st := newM(t, 2)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, 0)
	run(t, m, st, func(p *machine.Proc) {
		for i := 0; i < 10; i++ {
			p.WriteU64(seg.At(uint64(8*p.ID())), uint64(i*10+p.ID()))
		}
		p.Barrier()
		a := p.ReadU64(seg.At(0))
		b := p.ReadU64(seg.At(8))
		if a != 90 || b != 91 {
			t.Errorf("node %d sees %d,%d; want 90,91", p.ID(), a, b)
		}
	})
}

func TestDeterministicRuns(t *testing.T) {
	exec := func() sim.Time {
		m, st := newM(t, 4)
		seg := m.AllocShared("x", 4*mem.PageSize, vm.RoundRobin{}, 0)
		res := run(t, m, st, func(p *machine.Proc) {
			for i := 0; i < 64; i++ {
				idx := uint64(((i*7 + p.ID()*13) % 512) * 8)
				if i%3 == 0 {
					p.WriteU64(seg.At(idx), uint64(i))
				} else {
					p.ReadU64(seg.At(idx))
				}
			}
			p.Barrier()
		})
		return res.Cycles
	}
	a, b := exec(), exec()
	if a != b {
		t.Fatalf("nondeterministic: %d vs %d cycles", a, b)
	}
}

func TestSharerSetOverflowTransition(t *testing.T) {
	var s sharerSet
	for n := 0; n < 6; n++ {
		s.add(n, 32)
	}
	if s.usingOverflow() {
		t.Fatal("six sharers should fit the pointers")
	}
	s.add(6, 32)
	if !s.usingOverflow() {
		t.Fatal("seventh sharer must trigger overflow")
	}
	if s.count() != 7 {
		t.Fatalf("count = %d, want 7", s.count())
	}
	for n := 0; n < 7; n++ {
		if !s.has(n) {
			t.Fatalf("sharer %d lost in overflow conversion", n)
		}
	}
	s.remove(3)
	if s.has(3) || s.count() != 6 {
		t.Fatal("remove in overflow mode failed")
	}
}
