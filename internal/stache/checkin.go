package stache

import (
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/typhoon"
)

// Check-in (paper §4, after Hill et al.'s Cooperative Shared Memory):
// a program that knows it is done with a block can flush it back to the
// home voluntarily, replacing the later invalidation/acknowledgement
// round trip with one asynchronous notification. The paper's §4 uses
// check-in as the halfway point between transparent shared memory and
// the custom update protocol: it cuts coherence latency but "cannot
// attain the minimum of one message".

// hCheckIn is the CPU-to-own-NP check-in request.
const hCheckIn = HNextFree + 17

// CheckIn hints that the caller is done with va's block: a ReadWrite
// copy is written back, a ReadOnly copy dropped, and the home's
// directory updated — all asynchronously; the call costs the CPU only
// the message send.
func (st *Protocol) CheckIn(p *machine.Proc, va mem.VA) {
	st.sys.Send(p, network.VNetRequest, p.ID(), hCheckIn, []uint64{uint64(st.BlockBase(va))}, nil)
}

// handleCheckIn runs on the requesting node's own NP.
func (st *Protocol) handleCheckIn(np *typhoon.NP, pkt *network.Packet) {
	va := mem.VA(pkt.Args[0])
	pa, pte, ok := np.Translate(va)
	if !ok || pte.Mode != ModeRemote {
		np.Charge(2)
		return // not a stache copy: nothing to check in
	}
	home := np.FrameOf(va).Home
	ns := st.per[np.Node()]
	switch np.Mem().Tag(pa) {
	case mem.TagReadWrite:
		data := np.ForceReadBlockScratch(va)
		np.Invalidate(va)
		st.per[np.Node()].hot.checkins++
		st.per[np.Node()].hot.wbDirtyBlocks++
		ns.wbOutstanding[va] = true
		np.Charge(4)
		np.SendRequest(home, HWbDirty, []uint64{uint64(va)}, data)
	case mem.TagReadOnly:
		np.Invalidate(va)
		st.per[np.Node()].hot.checkins++
		st.per[np.Node()].hot.wbCleanBlocks++
		ns.wbOutstanding[va] = true
		bi := int(va.PageOffset()) / st.bs
		masks := make([]uint64, bi/64+1)
		masks[bi/64] = 1 << (bi % 64)
		np.Charge(4)
		np.SendRequest(home, HWbClean, append([]uint64{uint64(va.PageBase())}, masks...), nil)
	default:
		// Invalid or Busy (a fault or prefetch in flight): leave it be.
		np.Charge(2)
	}
}
