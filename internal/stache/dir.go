package stache

import (
	"fmt"
	"math/bits"

	"github.com/tempest-sim/tempest/internal/mem"
)

// Directory block states.
type dirState uint8

const (
	// dirIdle: no remote copies; the home's tags alone govern access.
	dirIdle dirState = iota
	// dirShared: read-only copies at the listed sharers (home may also
	// read: its tag is ReadOnly).
	dirShared
	// dirExclusive: one remote node owns the block read-write; the
	// home's copy is stale (home tag Invalid).
	dirExclusive
	// dirBusy: a transaction is collecting invalidation or downgrade
	// acknowledgements; conflicting requests are NACKed.
	dirBusy
)

func (s dirState) String() string {
	switch s {
	case dirIdle:
		return "Idle"
	case dirShared:
		return "Shared"
	case dirExclusive:
		return "Exclusive"
	case dirBusy:
		return "Busy"
	}
	return fmt.Sprintf("dirState(%d)", uint8(s))
}

// Kinds of transaction a Busy directory entry is completing.
type pendKind uint8

const (
	pendNone pendKind = iota
	// pendRemoteRead: a remote GETS is waiting for the owner's
	// downgrade.
	pendRemoteRead
	// pendRemoteWrite: a remote GETX/upgrade is waiting for
	// invalidations.
	pendRemoteWrite
	// pendHomeRead: the home CPU's read fault is waiting for the owner.
	pendHomeRead
	// pendHomeWrite: the home CPU's write fault is waiting for
	// invalidations.
	pendHomeWrite
)

// maxPointers is the number of per-block sharer pointers the directory
// preallocates: the paper's layout is two bytes of state plus six
// one-byte pointers per 32-byte block (§3). Beyond six sharers the
// implementation degrades to a bit vector (the paper's overflow scheme).
const maxPointers = 6

// sharerSet is the paper's hybrid sharer representation.
type sharerSet struct {
	n        int8
	ptrs     [maxPointers]int16
	overflow []uint64 // nil until more than maxPointers sharers
}

func (s *sharerSet) usingOverflow() bool { return s.overflow != nil }

func (s *sharerSet) add(node, totalNodes int) {
	if s.has(node) {
		return
	}
	if s.overflow != nil {
		s.overflow[node/64] |= 1 << (node % 64)
		return
	}
	if int(s.n) < maxPointers {
		s.ptrs[s.n] = int16(node)
		s.n++
		return
	}
	// Overflow: convert the pointers to a bit vector (§3).
	s.overflow = make([]uint64, (totalNodes+63)/64)
	for i := int8(0); i < s.n; i++ {
		p := int(s.ptrs[i])
		s.overflow[p/64] |= 1 << (p % 64)
	}
	s.overflow[node/64] |= 1 << (node % 64)
}

func (s *sharerSet) remove(node int) {
	if s.overflow != nil {
		s.overflow[node/64] &^= 1 << (node % 64)
		return
	}
	for i := int8(0); i < s.n; i++ {
		if s.ptrs[i] == int16(node) {
			s.n--
			s.ptrs[i] = s.ptrs[s.n]
			return
		}
	}
}

func (s *sharerSet) has(node int) bool {
	if s.overflow != nil {
		return s.overflow[node/64]&(1<<(node%64)) != 0
	}
	for i := int8(0); i < s.n; i++ {
		if s.ptrs[i] == int16(node) {
			return true
		}
	}
	return false
}

func (s *sharerSet) count() int {
	if s.overflow != nil {
		c := 0
		for _, w := range s.overflow {
			c += bits.OnesCount64(w)
		}
		return c
	}
	return int(s.n)
}

func (s *sharerSet) members() []int {
	if s.overflow != nil {
		var out []int
		for i, w := range s.overflow {
			for w != 0 {
				out = append(out, i*64+bits.TrailingZeros64(w))
				w &= w - 1
			}
		}
		return out
	}
	out := make([]int, 0, s.n)
	for i := int8(0); i < s.n; i++ {
		out = append(out, int(s.ptrs[i]))
	}
	return out
}

func (s *sharerSet) clear() {
	s.n = 0
	s.overflow = nil
}

// blockDir is one block's home directory entry.
type blockDir struct {
	state   dirState
	owner   int16 // remote owner when dirExclusive
	sharers sharerSet

	// Migratory-sharing detection (Cox/Fowler-style, enabled by
	// WithMigratory): lastGetS remembers the most recent read requester;
	// a subsequent upgrade from the same sole sharer marks the block
	// migratory, after which reads are granted exclusively. A migratory
	// recall that returns clean data demotes the block back to
	// read-sharing.
	migratory bool
	lastGetS  int16
	pendDirty bool

	// Busy-transaction state.
	pend        pendKind
	pendReq     int16 // remote requester (pendRemote*), -1 for the home CPU
	pendOwner   int16 // downgraded ex-owner to keep as a sharer, -1 if none
	pendUpgrade bool  // requester asked for an upgrade
	waiting     sharerSet
}

// homeDir is the per-home-page directory vector the Stache allocation
// functions hang off the page's RTLB user word (§3, §5.4).
type homeDir struct {
	baseVA mem.VA
	blocks []blockDir
}

func newHomeDir(baseVA mem.VA, blocksPerPage int) *homeDir {
	return &homeDir{baseVA: baseVA, blocks: make([]blockDir, blocksPerPage)}
}

// dirMemBase is the synthetic physical region directory entries are timed
// in: each entry occupies eight bytes (two state bytes plus six pointer
// bytes, §3) and is charged through the NP data cache.
const dirMemBase = uint64(1) << 38

// dirAddr returns the synthetic address of the entry for block index bi
// of the page whose frame offset is frameOff.
func dirAddr(node int, frameOff uint64, bi int) mem.PA {
	return mem.MakePA(node, dirMemBase+frameOff/mem.PageSize*1024+uint64(bi)*8)
}
