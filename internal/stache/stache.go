package stache

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/stats"
	"github.com/tempest-sim/tempest/internal/typhoon"
	"github.com/tempest-sim/tempest/internal/vm"
)

// Page modes registered by Stache. Custom protocols (e.g. the EM3D
// delayed-update protocol) register further modes starting at
// ModeNextFree.
const (
	// ModeHome marks a page whose frame lives at its home node with the
	// per-block directory vector attached (§3).
	ModeHome = vm.ModeUser
	// ModeRemote marks a stache page: a local copy of a remote page,
	// coherent at block granularity (§3).
	ModeRemote = vm.ModeUser + 1
	// ModeNextFree is the first page mode available to protocols layered
	// above Stache.
	ModeNextFree = vm.ModeUser + 2
)

// Message handler IDs.
const (
	HGetS uint32 = typhoon.HandlerUserBase + iota
	HGetX
	HUpgrade
	HDataRO
	HDataRW
	HUpgAck
	HInval
	HInvalAck
	HWbDirty
	HWbClean
	HNack
	// HNextFree is the first message-handler ID available to protocols
	// layered above Stache.
	HNextFree
)

// Invalidation kinds carried by HInval.
const (
	invalKill      = 0 // drop the copy
	invalDowngrade = 1 // demote ReadWrite to ReadOnly, returning data
)

// nodeState is one node's requester-side protocol state: the single
// outstanding block fault (the compute thread is suspended while it is
// pending) and the FIFO of stache pages for replacement.
type nodeState struct {
	pendingValid   bool
	pendingVA      mem.VA // block-aligned
	pendingWrite   bool
	pendingUpgrade bool

	homePendingValid bool
	homePending      typhoon.Fault

	// prefetching marks blocks with an outstanding non-binding prefetch
	// (tag Busy, no suspended thread).
	prefetching map[mem.VA]bool
	// orphans counts in-flight replies whose requesting page was
	// replaced before they arrived. Per-pair in-order delivery means the
	// next reply (or NACK) for that block belongs to the orphaned
	// request and must be consumed and dropped.
	orphans map[mem.VA]int
	// wbOutstanding marks blocks whose writeback (dirty data or clean
	// drop) is in flight to the home. An invalidation arriving for such
	// a block is answered with a defer code: the writeback itself stands
	// in for the acknowledgement. A later grant from the home clears the
	// mark (in-order delivery guarantees the home consumed the
	// writeback first).
	wbOutstanding map[mem.VA]bool

	fifo []mem.VA // stache page base VAs, oldest first

	// hot holds the node's protocol counters. Counting per node (each
	// bump happens on the node's own CPU or NP context) keeps the hot
	// path shard-local under sharded execution; fold sums the nodes.
	hot hotStats
}

// hotStats are the protocol's hot-path counters.
type hotStats struct {
	remoteFaults    uint64
	homeFaults      uint64
	getS            uint64
	getX            uint64
	upgrades        uint64
	nacks           uint64
	invalsSent      uint64
	acks            uint64
	pageFaults      uint64
	replacements    uint64
	wbDirtyBlocks   uint64
	wbCleanBlocks   uint64
	dataReplies     uint64
	prefetches      uint64
	prefetchFills   uint64
	checkins        uint64
	migratoryGrants uint64
}

// Protocol is the Stache library: a typhoon.Protocol whose handlers
// implement transparent shared memory in user-level software.
type Protocol struct {
	sys *typhoon.System
	m   *machine.Machine
	bs  int

	maxPages  int // per-node stache page budget; 0 = bounded only by DRAM
	migratory bool

	per []*nodeState

	lastFold hotStats
}

var _ typhoon.Protocol = (*Protocol)(nil)

// Option configures the Stache library.
type Option func(*Protocol)

// WithMaxPages bounds how many stache pages each node dedicates to
// caching remote data — Stache uses "only as much of the local memory as
// an application chooses to use" (§7). Exceeding the budget triggers
// FIFO page replacement.
func WithMaxPages(n int) Option {
	return func(p *Protocol) { p.maxPages = n }
}

// WithMigratory enables migratory-sharing detection: a block whose
// access pattern is read-then-write by one processor at a time is
// granted exclusively on reads, collapsing the fetch+upgrade double
// round trip into one. This is a protocol-policy extension beyond the
// paper's default Stache — exactly the kind of user-level specialisation
// Tempest exists to allow — and it is off by default to keep the
// baseline faithful.
func WithMigratory() Option {
	return func(p *Protocol) { p.migratory = true }
}

// New returns an unattached Stache protocol. Pass it to typhoon.New.
func New(opts ...Option) *Protocol {
	p := &Protocol{}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements typhoon.Protocol.
func (st *Protocol) Name() string { return "Stache" }

// Attach implements typhoon.Protocol: it registers Stache's page modes
// and message handlers.
func (st *Protocol) Attach(sys *typhoon.System) {
	st.sys = sys
	st.m = sys.M
	st.bs = sys.M.Cfg.BlockSize
	st.per = make([]*nodeState, sys.M.Cfg.Nodes)
	for i := range st.per {
		st.per[i] = &nodeState{
			prefetching:   make(map[mem.VA]bool),
			orphans:       make(map[mem.VA]int),
			wbOutstanding: make(map[mem.VA]bool),
		}
	}

	// An unmapped-page fault resolves through the segment, whose mode is
	// the home mode; the handler creates a stache page on the faulting
	// (necessarily non-home) node. Mapped stache pages fault at block
	// granularity under the remote mode.
	sys.RegisterPageMode(ModeHome, typhoon.PageModeOps{
		PageFault:  st.pageFault,
		BlockFault: st.homeBlockFault,
	})
	sys.RegisterPageMode(ModeRemote, typhoon.PageModeOps{
		PageFault: func(_ *typhoon.System, p *machine.Proc, va mem.VA, write bool) {
			panic(fmt.Sprintf("stache: page fault on mapped stache page %#x at node %d", va, p.ID()))
		},
		BlockFault: st.remoteBlockFault,
	})

	sys.RegisterHandler(HGetS, st.handleGetS)
	sys.RegisterHandler(HGetX, st.handleGetX)
	sys.RegisterHandler(HUpgrade, st.handleUpgrade)
	sys.RegisterHandler(HDataRO, st.handleDataRO)
	sys.RegisterHandler(HDataRW, st.handleDataRW)
	sys.RegisterHandler(HUpgAck, st.handleUpgAck)
	sys.RegisterHandler(HInval, st.handleInval)
	sys.RegisterHandler(HInvalAck, st.handleInvalAck)
	sys.RegisterHandler(HWbDirty, st.handleWbDirty)
	sys.RegisterHandler(HWbClean, st.handleWbClean)
	sys.RegisterHandler(HNack, st.handleNack)
	sys.RegisterHandler(hPrefetch, st.handlePrefetch)
	sys.RegisterHandler(hCheckIn, st.handleCheckIn)

	sys.OnFold(st.fold)
}

// System returns the Typhoon system Stache is attached to.
func (st *Protocol) System() *typhoon.System { return st.sys }

// SetupSegment implements typhoon.Protocol: for each page, the home node
// allocates the frame and per-block directory, maps the page at the
// shared virtual address with every block ReadWrite, and records the
// home binding in the distributed mapping table (§3). Pages of custom
// segments (mode >= ModeNextFree) get the same home-page structure under
// their own mode so layered protocols can override the fault handlers.
func (st *Protocol) SetupSegment(seg *vm.Segment) {
	homeMode := ModeHome
	remoteMode := ModeRemote
	if seg.Mode >= ModeNextFree {
		homeMode = seg.Mode
		remoteMode = seg.Mode + 1
	}
	for i := 0; i < seg.Pages(); i++ {
		va := seg.Base + mem.VA(i*mem.PageSize)
		home := st.m.VM.Home(va)
		if home < 0 {
			panic("stache: segments need static home placement")
		}
		pa, err := st.m.Mems[home].AllocFrame(mem.TagReadWrite)
		if err != nil {
			panic(fmt.Sprintf("stache: home %d out of frames: %v", home, err))
		}
		frame := st.m.Mems[home].Frame(pa)
		frame.Mode = homeMode
		frame.Home = home
		frame.User = newHomeDir(va, st.m.Mems[home].BlocksPerPage())
		st.m.VM.Table(home).Map(va.VPN(), vm.PTE{PA: pa, Writable: true, Mode: homeMode})
	}
	_ = remoteMode // remote pages are created at fault time with this mode
}

// remoteModeFor returns the page mode stache pages of this segment use.
func (st *Protocol) remoteModeFor(segMode int) int {
	if segMode >= ModeNextFree {
		return segMode + 1
	}
	return ModeRemote
}

// BlockBase returns va rounded down to its coherence block.
func (st *Protocol) BlockBase(va mem.VA) mem.VA { return va &^ mem.VA(st.bs-1) }

// pageFault is the user-level page-fault handler (§3): allocate a stache
// page, map it at the shared address with all blocks Invalid, cache the
// home node ID, and restart the access (which then takes a block access
// fault).
func (st *Protocol) pageFault(sys *typhoon.System, p *machine.Proc, va mem.VA, write bool) {
	node := p.ID()
	st.per[node].hot.pageFaults++
	p.Compute(costPageFault)
	home := st.m.VM.Home(va)
	if home == node {
		panic(fmt.Sprintf("stache: node %d page-faulted on its own home page %#x", node, va))
	}
	segMode := st.segModeOf(va)
	if st.maxPages > 0 && len(st.per[node].fifo) >= st.maxPages {
		st.replacePage(p)
	}
	pa, err := st.m.Mems[node].AllocFrame(mem.TagInvalid)
	if err == mem.ErrOutOfFrames {
		st.replacePage(p)
		pa, err = st.m.Mems[node].AllocFrame(mem.TagInvalid)
	}
	if err != nil {
		panic(fmt.Sprintf("stache: node %d cannot allocate a stache page: %v", node, err))
	}
	mode := st.remoteModeFor(segMode)
	frame := st.m.Mems[node].Frame(pa)
	frame.Mode = mode
	frame.Home = home
	st.m.VM.Table(node).Map(va.VPN(), vm.PTE{PA: pa, Writable: true, Mode: mode})
	st.per[node].fifo = append(st.per[node].fifo, va.PageBase())
}

func (st *Protocol) segModeOf(va mem.VA) int {
	for _, seg := range st.m.VM.Segments() {
		if va >= seg.Base && va < seg.End() {
			return seg.Mode
		}
	}
	panic(fmt.Sprintf("stache: %#x not in any shared segment", va))
}

// replacePage implements the FIFO stache-page replacement of §3: the
// oldest stache page is flushed — modified blocks are written back to
// the home, clean residency is dropped with one batched notice — and the
// page is unmapped and freed.
func (st *Protocol) replacePage(p *machine.Proc) {
	node := p.ID()
	ns := st.per[node]
	if len(ns.fifo) == 0 {
		panic(fmt.Sprintf("stache: node %d out of frames with no stache pages to replace", node))
	}
	victim := ns.fifo[0]
	copy(ns.fifo, ns.fifo[1:])
	ns.fifo = ns.fifo[:len(ns.fifo)-1]
	ns.hot.replacements++

	pte, ok := st.m.VM.Table(node).Lookup(victim.VPN())
	if !ok {
		panic(fmt.Sprintf("stache: victim page %#x not mapped on node %d", victim, node))
	}
	m := st.m.Mems[node]
	frame := m.Frame(pte.PA)
	home := frame.Home
	p.Compute(costReplacePageBase)

	masks := make([]uint64, (m.BlocksPerPage()+63)/64)
	clean := false
	buf := make([]byte, st.bs)
	for bi := 0; bi < m.BlocksPerPage(); bi++ {
		blockPA := pte.PA + mem.PA(bi*st.bs)
		blockVA := victim + mem.VA(bi*st.bs)
		switch frame.Tags[bi] {
		case mem.TagReadWrite:
			// Potentially modified: send the data home.
			p.Compute(costReplaceDirtyPerBlk)
			m.ReadBlock(blockPA, buf)
			ns.hot.wbDirtyBlocks++
			ns.wbOutstanding[blockVA] = true
			// Send copies on send, so buf is reusable for the next block.
			st.sys.Send(p, netRequest, home, HWbDirty, []uint64{uint64(blockVA)}, buf)
		case mem.TagReadOnly:
			p.Compute(costReplacePerBlock)
			masks[bi/64] |= 1 << (bi % 64)
			clean = true
			ns.hot.wbCleanBlocks++
			ns.wbOutstanding[blockVA] = true
		case mem.TagBusy:
			if !st.per[node].prefetching[blockVA] {
				panic(fmt.Sprintf("stache: victim page %#x has a Busy block during replacement", victim))
			}
			// A prefetch is in flight for this block: orphan it. The
			// next reply (or NACK) for this block is the orphan's, by
			// in-order delivery; it will be consumed, dropped, and the
			// residency handed back to the home.
			delete(st.per[node].prefetching, blockVA)
			st.per[node].orphans[blockVA]++
		}
	}
	if clean {
		args := append([]uint64{uint64(victim)}, masks...)
		st.sys.Send(p, netRequest, home, HWbClean, args, nil)
	}
	// Drop the page: purge CPU cache lines and the mapping.
	st.m.Caches[node].InvalidatePage(pte.PA)
	st.m.TLBs[node].InvalidateEntry(victim.VPN())
	st.m.VM.Table(node).Unmap(victim.VPN())
	m.FreeFrame(pte.PA)
}

func (st *Protocol) fold(c *stats.Counters) {
	var d hotStats
	for _, ns := range st.per {
		h := &ns.hot
		d.remoteFaults += h.remoteFaults
		d.homeFaults += h.homeFaults
		d.getS += h.getS
		d.getX += h.getX
		d.upgrades += h.upgrades
		d.nacks += h.nacks
		d.invalsSent += h.invalsSent
		d.acks += h.acks
		d.pageFaults += h.pageFaults
		d.replacements += h.replacements
		d.wbDirtyBlocks += h.wbDirtyBlocks
		d.wbCleanBlocks += h.wbCleanBlocks
		d.dataReplies += h.dataReplies
		d.prefetches += h.prefetches
		d.prefetchFills += h.prefetchFills
		d.checkins += h.checkins
		d.migratoryGrants += h.migratoryGrants
	}
	l := st.lastFold
	c.Add("stache.remote_faults", d.remoteFaults-l.remoteFaults)
	c.Add("stache.home_faults", d.homeFaults-l.homeFaults)
	c.Add("stache.gets", d.getS-l.getS)
	c.Add("stache.getx", d.getX-l.getX)
	c.Add("stache.upgrades", d.upgrades-l.upgrades)
	c.Add("stache.nacks", d.nacks-l.nacks)
	c.Add("stache.invals_sent", d.invalsSent-l.invalsSent)
	c.Add("stache.acks", d.acks-l.acks)
	c.Add("stache.page_faults", d.pageFaults-l.pageFaults)
	c.Add("stache.replacements", d.replacements-l.replacements)
	c.Add("stache.wb_dirty_blocks", d.wbDirtyBlocks-l.wbDirtyBlocks)
	c.Add("stache.wb_clean_blocks", d.wbCleanBlocks-l.wbCleanBlocks)
	c.Add("stache.data_replies", d.dataReplies-l.dataReplies)
	c.Add("stache.prefetches", d.prefetches-l.prefetches)
	c.Add("stache.prefetch_fills", d.prefetchFills-l.prefetchFills)
	c.Add("stache.checkins", d.checkins-l.checkins)
	c.Add("stache.migratory_grants", d.migratoryGrants-l.migratoryGrants)
	st.lastFold = d
}
