// Package typhoon models the Typhoon node (paper §5): a commodity CPU
// whose bus transactions are monitored by a custom network-interface
// processor (NP). The NP enforces fine-grain access tags through a
// reverse TLB, turns violating bus transactions into block access faults
// (suspending the CPU), and runs user-level message and fault handlers to
// completion under a hardware-assisted dispatch loop with reply-network
// priority. The package implements the Tempest mechanisms — low-overhead
// active messages, bulk data transfer, user-level virtual-memory
// management, and fine-grain access control — as the API user-level
// protocol libraries (internal/stache, custom application protocols)
// program against.
package typhoon

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/agent"
	"github.com/tempest-sim/tempest/internal/cache"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stats"
	"github.com/tempest-sim/tempest/internal/trace"
	"github.com/tempest-sim/tempest/internal/vm"
)

// NP cost model, in cycles. Handlers additionally charge their own
// instruction counts (1 cycle/instruction, paper §6) via NP.Charge and
// their memory references via NP.MemRef.
const (
	// DispatchCycles is the hardware-assisted dispatch: read the
	// dispatch register and jump (paper §5.1).
	DispatchCycles sim.Time = 3
	// BAFSuspendCycles is charged to the CPU when a bus transaction is
	// nacked with "relinquish and retry" and the fault is logged in the
	// BAF buffer (§5.4).
	BAFSuspendCycles sim.Time = 5
	// SendSetupCycles starts a message: store the destination-node
	// register and the end-of-message marker (§5.1).
	SendSetupCycles sim.Time = 2
	// SendPerWordCycles moves one 32-bit word to the send queue with a
	// single-cycle store (§5.1).
	SendPerWordCycles sim.Time = 1
	// BlockXferCycles moves an aligned 32-byte block between a message
	// queue and memory through the block transfer buffer (§5.1).
	BlockXferCycles sim.Time = 4
	// TagOpCycles is a memory-mapped RTLB tag read or write (§5.4).
	TagOpCycles sim.Time = 2
	// ResumeCycles unmasks the CPU's bus request line (§5.4).
	ResumeCycles sim.Time = 2
	// UpgradeGrantCycles is a bus invalidate transaction on a block whose
	// tag already permits the write: the NP lets it pass.
	UpgradeGrantCycles sim.Time = 5

	// NPCacheSize and NPCacheWays describe the NP data cache (Table 2:
	// 16 KB, 2-way). Handler data structures (directories, per-page
	// state) are timed through it.
	NPCacheSize = 16 << 10
	NPCacheWays = 2
)

// Builtin handler IDs; user protocols register IDs at or above
// HandlerUserBase.
const (
	hBulkData uint32 = iota + 1
	hBulkDone
	hFragStart
	hFragData
	// HandlerUserBase is the first message-handler ID available to
	// protocol libraries.
	HandlerUserBase uint32 = 16
)

// Handler is a user-level message handler running on the NP. Handlers run
// to completion: the dispatch loop never preempts them (paper §5.1).
type Handler func(np *NP, pkt *network.Packet)

// Fault describes one block access fault captured in the BAF buffer
// (§5.4): the faulting virtual and physical address, the access type, and
// the page mode that selects the user-level handler.
type Fault struct {
	Proc  *machine.Proc
	VA    mem.VA
	PA    mem.PA
	Write bool
	Mode  int
	// Tag is the block's tag at fault time (the RTLB entry's two state
	// bits, available to the handler without a separate tag read).
	Tag mem.Tag
	// PostedAt is the simulated time the fault entered the BAF buffer;
	// the dispatch loop never handles it earlier.
	PostedAt sim.Time
}

// PageModeOps is the set of user-level handlers serving one page mode.
// The RTLB's page-mode field plus the access type select among them.
type PageModeOps struct {
	// PageFault runs at user level on the faulting CPU (§2.3): the page
	// is unmapped (or write-protected) on this node. It must install a
	// translation before returning.
	PageFault func(sys *System, p *machine.Proc, va mem.VA, write bool)
	// BlockFault runs on the NP (§5.4) after a tag violation. It must
	// eventually re-tag the block and Resume the faulting processor.
	BlockFault func(np *NP, f Fault)
}

// Protocol is a user-level memory-system policy built on Tempest: Stache,
// or an application-specific protocol.
type Protocol interface {
	// Name identifies the protocol ("Stache", "EM3D-Update").
	Name() string
	// Attach registers the protocol's message handlers and page modes.
	Attach(sys *System)
	// SetupSegment prepares a shared segment: home pages, directories.
	SetupSegment(seg *vm.Segment)
}

// SoftwareConfig turns the Typhoon system into a software Tempest
// implementation (the "native version for existing machines" the paper's
// §2 announces, realised later as Blizzard): no custom hardware, so
// access checks run inline before every shared reference and protocol
// handlers execute on the node's main processor.
type SoftwareConfig struct {
	// CheckOverhead is charged on every shared reference, hit or miss —
	// the inline tag test a binary rewriter inserts.
	CheckOverhead sim.Time
	// DispatchOverhead is the extra cost per handler dispatch (interrupt
	// or poll entry/exit on the main processor, versus Typhoon's
	// hardware-assisted dispatch).
	DispatchOverhead sim.Time
	// StealHandlerCycles charges each handler's execution to the node's
	// compute processor: there is no separate NP to absorb it.
	StealHandlerCycles bool
}

// Option configures a Typhoon system.
type Option func(*System)

// WithTracer attaches a protocol-event tracer; hot paths pay only a nil
// check when tracing is off.
func WithTracer(tr *trace.Tracer) Option {
	return func(s *System) { s.tracer = tr }
}

// WithSoftware configures the system as a software Tempest
// implementation.
func WithSoftware(cfg SoftwareConfig) Option {
	return func(s *System) { s.software = cfg }
}

// System is the Typhoon memory system: one NP per node plus the handler
// and page-mode registries shared by all nodes (every node runs the same
// program image).
type System struct {
	M        *machine.Machine
	proto    Protocol
	software SoftwareConfig
	tracer   *trace.Tracer

	nps      []*NP
	handlers map[uint32]Handler
	modes    map[int]PageModeOps

	c         *stats.Counters
	foldHooks []func(*stats.Counters)
	// fragSeqs[src] numbers fragment streams per source node (reassembly
	// is keyed by {src, stream}, so per-source numbering is exact) — a
	// global counter would be written from every shard.
	fragSeqs []uint64
}

var _ machine.MemSystem = (*System)(nil)

// New attaches a Typhoon memory system running the given protocol to m.
func New(m *machine.Machine, proto Protocol, opts ...Option) *System {
	s := &System{
		M:        m,
		proto:    proto,
		handlers: make(map[uint32]Handler),
		modes:    make(map[int]PageModeOps),
		c:        stats.NewCounters(),
		fragSeqs: make([]uint64, m.Cfg.Nodes),
	}
	for _, o := range opts {
		o(s)
	}
	if s.tracer != nil {
		// Size the tracer's per-node buffers up front: every emit is
		// node-local (shard-local under sharded execution) and the merged
		// stream is reconstructed deterministically at read time.
		s.tracer.Prepare(m.Cfg.Nodes)
	}
	m.PerRefOverhead = s.software.CheckOverhead
	for i := 0; i < m.Cfg.Nodes; i++ {
		np := &NP{
			sys:      s,
			node:     i,
			ep:       m.Net.Endpoint(i),
			tlb:      cache.NewTLB(m.Cfg.TLBEntries),
			rtlb:     cache.NewTLB(m.Cfg.TLBEntries),
			dcache:   cache.New(NPCacheSize, NPCacheWays, m.Cfg.BlockSize, m.Cfg.Seed+0xD00D+uint64(i)),
			bulkDone: make(map[int][]*bulkTransfer),
			frags:    make(map[fragKey]*fragBuf),
			scratch:  make([]byte, m.Cfg.BlockSize),
		}
		s.nps = append(s.nps, np)
	}
	s.handlers[hBulkData] = (*NP).bulkDataHandler
	s.handlers[hBulkDone] = (*NP).bulkDoneHandler
	s.handlers[hFragStart] = (*NP).fragStartHandler
	s.handlers[hFragData] = (*NP).fragDataHandler
	m.SetMemSystem(s)
	proto.Attach(s)
	// Spawn dispatch loops only after attach so handler registration is
	// complete before any message can arrive. Each NP rides a protocol
	// agent (internal/agent): a stepper whose dispatch iterations the
	// scheduler runs inline (no goroutine handoff), parked under "np
	// idle" when nothing is pending, with faults as the NP's urgent work
	// and bulk transfers as its idle work.
	for _, np := range s.nps {
		np.core = agent.Spawn(m.Eng, m.Net, np.node, fmt.Sprintf("np%d", np.node), "np idle", m.Cfg.OccupancyCycles, np, np)
		np.ctx = np.core.Ctx
	}
	return s
}

// Name implements machine.MemSystem.
func (s *System) Name() string { return "Typhoon/" + s.proto.Name() }

// Counters implements machine.MemSystem.
func (s *System) Counters() *stats.Counters {
	for _, np := range s.nps {
		// Fold NP hot-path counters lazily.
		np.fold(s.c)
	}
	for _, fn := range s.foldHooks {
		fn(s.c)
	}
	return s.c
}

// OnFold registers a callback run whenever counters are collected, so
// protocol libraries can fold their own hot-path counters in. Callbacks
// must be idempotent across calls (fold deltas, not totals).
func (s *System) OnFold(fn func(*stats.Counters)) {
	s.foldHooks = append(s.foldHooks, fn)
}

// Protocol returns the attached protocol.
func (s *System) Protocol() Protocol { return s.proto }

// NP returns node's network-interface processor.
func (s *System) NP(node int) *NP { return s.nps[node] }

// RegisterHandler installs a user-level message handler. IDs below
// HandlerUserBase are reserved for the bulk-transfer machinery.
func (s *System) RegisterHandler(id uint32, h Handler) {
	if id < HandlerUserBase {
		panic(fmt.Sprintf("typhoon: handler id %d is reserved", id))
	}
	if _, dup := s.handlers[id]; dup {
		panic(fmt.Sprintf("typhoon: handler id %d registered twice", id))
	}
	s.handlers[id] = h
}

// WrapHandler replaces an already-registered message handler with
// wrap(existing). It exists for instrumentation and fault injection —
// the conformance suite's negative tests wrap a Stache handler to
// corrupt payloads and charge extra cycles, proving the replay and
// differential layers catch a buggy protocol. Like RegisterHandler it
// must be called before Engine.Run: the handler table is read from
// every shard once messages flow. Wrapping an unregistered ID panics.
func (s *System) WrapHandler(id uint32, wrap func(Handler) Handler) {
	h, ok := s.handlers[id]
	if !ok {
		panic(fmt.Sprintf("typhoon: WrapHandler on unregistered handler id %d", id))
	}
	s.handlers[id] = wrap(h)
}

// HasHandler reports whether a message handler is registered under id —
// the guard a WrapHandler caller needs when instrumenting a handler that
// only some protocols install.
func (s *System) HasHandler(id uint32) bool {
	_, ok := s.handlers[id]
	return ok
}

// RegisterPageMode installs the fault handlers for a page mode.
func (s *System) RegisterPageMode(mode int, ops PageModeOps) {
	if mode == vm.ModePrivate {
		panic("typhoon: cannot override the private page mode")
	}
	if _, dup := s.modes[mode]; dup {
		panic(fmt.Sprintf("typhoon: page mode %d registered twice", mode))
	}
	s.modes[mode] = ops
}

// SetupSegment implements machine.MemSystem by delegating to the
// protocol.
func (s *System) SetupSegment(seg *vm.Segment) { s.proto.SetupSegment(seg) }

// PageFault implements machine.MemSystem: it invokes the page mode's
// user-level page-fault handler on the faulting CPU (§2.3).
func (s *System) PageFault(p *machine.Proc, va mem.VA, write bool) {
	if !vm.IsShared(va) {
		panic(fmt.Sprintf("typhoon: page fault on non-shared address %#x on node %d", va, p.ID()))
	}
	mode := s.segmentMode(va)
	ops, ok := s.modes[mode]
	if !ok || ops.PageFault == nil {
		panic(fmt.Sprintf("typhoon: no page-fault handler for mode %d (va %#x)", mode, va))
	}
	s.nps[p.ID()].hot.pageFaults++
	if s.tracer != nil {
		aux := uint64(0)
		if write {
			aux = 1
		}
		s.tracer.Emit(trace.Event{T: p.Ctx.Time(), Node: p.ID(), Kind: trace.KPageFault, VA: va, Aux: aux})
	}
	ops.PageFault(s, p, va, write)
}

func (s *System) segmentMode(va mem.VA) int {
	for _, seg := range s.M.VM.Segments() {
		if va >= seg.Base && va < seg.End() {
			return seg.Mode
		}
	}
	panic(fmt.Sprintf("typhoon: %#x not in any shared segment", va))
}

// ServiceMiss implements machine.MemSystem: the NP snoops the bus
// transaction, checks the block's tag through the RTLB, and either lets
// memory respond (charging the local miss) or suspends the CPU with a
// block access fault (§5.4).
func (s *System) ServiceMiss(p *machine.Proc, va mem.VA, pa mem.PA, pte vm.PTE, write, upgrade bool) cache.LineState {
	cfg := &s.M.Cfg
	if pte.Mode == vm.ModePrivate {
		p.Ctx.Advance(cfg.LocalMissCycles)
		return cache.LineExclusive
	}
	if pa.Node() != p.ID() {
		panic(fmt.Sprintf("typhoon: node %d mapped remote frame %#x; Typhoon mappings are node-local", p.ID(), pa))
	}
	np := s.nps[p.ID()]
	// RTLB lookup: a miss nacks the transaction with relinquish-and-retry
	// while the entry is fetched (§5.4); the requester eats the latency.
	if !np.rtlb.Lookup(uint64(pa.FrameBase())) {
		np.hot.rtlbMisses++
		p.Ctx.Advance(cfg.TLBMissCycles)
	}
	tag := s.M.Mems[p.ID()].Tag(pa)
	permitted := tag.PermitsRead() && !write || tag.PermitsWrite()
	if permitted {
		// The bus transaction is atomic: no other context may run
		// between the tag check and the cache fill, or a racing
		// invalidation could be lost against the about-to-fill line.
		if upgrade {
			// Write to a Shared line whose tag is ReadWrite: the NP
			// lets the bus invalidate transaction complete.
			p.Ctx.AdvanceAtomic(UpgradeGrantCycles)
			return cache.LineExclusive
		}
		p.Ctx.AdvanceAtomic(cfg.LocalMissCycles)
		if tag == mem.TagReadWrite {
			// Memory responds; the CPU acquires an owned copy.
			return cache.LineExclusive
		}
		// ReadOnly: the NP asserts the shared line so the CPU cannot
		// own its copy (§5.4).
		return cache.LineShared
	}
	// Block access fault: nack, mask the CPU's bus request, log the
	// fault, and let the NP dispatch the user-level handler.
	np.hot.bafs++
	if s.tracer != nil {
		aux := uint64(0)
		if write {
			aux = 1
		}
		s.tracer.Emit(trace.Event{T: p.Ctx.Time(), Node: p.ID(), Kind: trace.KBlockFault, VA: va, Aux: aux})
	}
	p.Ctx.Advance(BAFSuspendCycles)
	np.postFault(Fault{Proc: p, VA: va, PA: pa, Write: write, Mode: pte.Mode, Tag: tag, PostedAt: p.Ctx.Time()})
	p.Ctx.Park("block access fault")
	return cache.LineInvalid // retry the reference after resume
}

// Evicted implements machine.MemSystem. Typhoon's CPU cache writes back
// through a perfect write buffer (Table 2: writeback 0) and the NP does
// not track CPU cache residency, so evictions are free.
func (s *System) Evicted(p *machine.Proc, victim mem.PA, state cache.LineState) {}
