package typhoon

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/vm"
)

// nullProto is a minimal protocol: every shared page is premapped on its
// home with ReadWrite tags and other nodes never map it; it exists to
// exercise the Typhoon mechanisms directly.
type nullProto struct {
	sys *System
}

func (n *nullProto) Name() string { return "null" }
func (n *nullProto) Attach(sys *System) {
	n.sys = sys
	sys.RegisterPageMode(vm.ModeUser, PageModeOps{
		PageFault: func(_ *System, p *machine.Proc, va mem.VA, write bool) {
			panic("nullProto: page fault")
		},
		BlockFault: func(np *NP, f Fault) {
			// Grant whatever was asked.
			np.SetTag(f.VA, mem.TagReadWrite)
			np.Resume(f.Proc)
		},
	})
}
func (n *nullProto) SetupSegment(seg *vm.Segment) {
	m := n.sys.M
	for i := 0; i < seg.Pages(); i++ {
		va := seg.Base + mem.VA(i*mem.PageSize)
		home := m.VM.Home(va)
		pa, err := m.Mems[home].AllocFrame(mem.TagReadWrite)
		if err != nil {
			panic(err)
		}
		m.Mems[home].Frame(pa).Home = home
		for node := 0; node < m.Cfg.Nodes; node++ {
			if node == home {
				m.VM.Table(node).Map(va.VPN(), vm.PTE{PA: pa, Writable: true, Mode: vm.ModeUser})
			}
		}
	}
}

func newNull(t *testing.T, nodes int) (*machine.Machine, *System) {
	t.Helper()
	m := machine.New(machine.Config{Nodes: nodes, CacheSize: 4096, Seed: 1})
	np := &nullProto{}
	sys := New(m, np)
	return m, sys
}

func TestLocalMissGrantsExclusiveOnRWTag(t *testing.T) {
	m, _ := newNull(t, 1)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	if _, err := m.Run(func(p *machine.Proc) {
		p.ReadU64(seg.At(0))
		t0 := p.Ctx.Time()
		p.WriteU64(seg.At(0), 5) // E-state write: silent
		if d := p.Ctx.Time() - t0; d != 1 {
			t.Errorf("write after RW-tag read cost %d, want 1", d)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyTagFillsShared(t *testing.T) {
	m, _ := newNull(t, 1)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	m.Mems[0].SetTag(mem.MakePA(0, 0), mem.TagReadOnly) // first frame, first block
	if _, err := m.Run(func(p *machine.Proc) {
		p.ReadU64(seg.At(0))
		t0 := p.Ctx.Time()
		p.WriteU64(seg.At(0), 1) // upgrade -> BAF -> handler grants RW
		if d := p.Ctx.Time() - t0; d < 10 {
			t.Errorf("write to RO block cost only %d cycles; expected a fault round trip", d)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockFaultSuspendsAndResumes(t *testing.T) {
	m, _ := newNull(t, 1)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	m.Mems[0].SetPageTags(mem.MakePA(0, 0), mem.TagInvalid)
	res, err := m.Run(func(p *machine.Proc) {
		if got := p.ReadU64(seg.At(0)); got != 0 {
			t.Errorf("read %d", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Get("np.block_access_faults") != 1 {
		t.Errorf("BAFs = %d, want 1", res.Counters.Get("np.block_access_faults"))
	}
	if res.Counters.Get("np.fault_handlers") != 1 {
		t.Errorf("fault handlers = %d, want 1", res.Counters.Get("np.fault_handlers"))
	}
}

func TestUserMessagingRoundTrip(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 2, CacheSize: 4096, Seed: 1})
	np := &nullProto{}
	sys := New(m, np)
	const hPing = HandlerUserBase + 7
	const hPong = HandlerUserBase + 8
	var got []uint64
	sys.RegisterHandler(hPing, func(np *NP, pkt *network.Packet) {
		np.Charge(3)
		np.SendReply(pkt.Src, hPong, []uint64{pkt.Args[0] * 2}, nil)
	})
	done := false
	sys.RegisterHandler(hPong, func(np *NP, pkt *network.Packet) {
		got = append(got, pkt.Args[0])
		done = true
		_ = done
	})
	if _, err := m.Run(func(p *machine.Proc) {
		if p.ID() == 0 {
			sys.Send(p, network.VNetRequest, 1, hPing, []uint64{21}, nil)
			p.Ctx.Sleep(200)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("pong = %v, want [42]", got)
	}
}

func TestBulkTransferMovesData(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 2, CacheSize: 4096, Seed: 1})
	sys := New(m, &nullProto{})
	const n = 1024
	var srcVA, dstVA mem.VA
	srcVA = m.AllocPrivate(0, n)
	dstVA = m.AllocPrivate(1, n)
	// Fill source directly.
	for i := 0; i < n; i += 8 {
		pa, _, _ := m.VM.Translate(0, srcVA+mem.VA(i))
		m.Mems[0].WriteU64(pa, uint64(i)*3+1)
	}
	if _, err := m.Run(func(p *machine.Proc) {
		if p.ID() != 0 {
			return
		}
		b := sys.BulkTransfer(p, 1, srcVA, dstVA, n)
		b.Wait(p)
		if !b.Done() {
			t.Error("transfer not done after Wait")
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 8 {
		pa, _, _ := m.VM.Translate(1, dstVA+mem.VA(i))
		if got := m.Mems[1].ReadU64(pa); got != uint64(i)*3+1 {
			t.Fatalf("dst[%d] = %d, want %d", i, got, uint64(i)*3+1)
		}
	}
}

func TestBulkTransferOverlapsComputation(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 2, CacheSize: 4096, Seed: 1})
	sys := New(m, &nullProto{})
	srcVA := m.AllocPrivate(0, 4096)
	dstVA := m.AllocPrivate(1, 4096)
	if _, err := m.Run(func(p *machine.Proc) {
		if p.ID() != 0 {
			return
		}
		b := sys.BulkTransfer(p, 1, srcVA, dstVA, 4096)
		t0 := p.Ctx.Time()
		p.Compute(5000) // overlap: the NP streams chunks meanwhile
		b.Wait(p)
		total := p.Ctx.Time() - t0
		// 64 chunks at ~20 cycles each would be ~1300 serial cycles; with
		// overlap the total should be dominated by the 5000-cycle compute.
		if total > 6000 {
			t.Errorf("transfer did not overlap: %d cycles for 5000 compute", total)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentedMessageReassembly(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 2, CacheSize: 4096, Seed: 1})
	sys := New(m, &nullProto{})
	const hBig = HandlerUserBase + 9
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	var gotArgs []uint64
	sys.RegisterHandler(hBig, func(np *NP, pkt *network.Packet) {
		got = append([]byte(nil), pkt.Data...)
		gotArgs = append([]uint64(nil), pkt.Args...)
	})
	if _, err := m.Run(func(p *machine.Proc) {
		if p.ID() == 0 {
			sys.Send(p, network.VNetRequest, 1, hBig, []uint64{11, 22}, payload)
			p.Ctx.Sleep(500)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembled %d bytes, mismatch", len(got))
	}
	if len(gotArgs) != 2 || gotArgs[0] != 11 || gotArgs[1] != 22 {
		t.Fatalf("args = %v", gotArgs)
	}
}

func TestInterleavedFragmentStreams(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 3, CacheSize: 4096, Seed: 1})
	sys := New(m, &nullProto{})
	const hBig = HandlerUserBase + 9
	recv := map[byte]int{}
	sys.RegisterHandler(hBig, func(np *NP, pkt *network.Packet) {
		for _, b := range pkt.Data {
			if b != pkt.Data[0] {
				t.Errorf("stream corruption: %d in stream of %d", b, pkt.Data[0])
			}
		}
		recv[pkt.Data[0]] = len(pkt.Data)
	})
	if _, err := m.Run(func(p *machine.Proc) {
		if p.ID() == 2 {
			return // receiver
		}
		payload := make([]byte, 200)
		for i := range payload {
			payload[i] = byte(p.ID() + 1)
		}
		sys.Send(p, network.VNetRequest, 2, hBig, nil, payload)
		p.Ctx.Sleep(500)
	}); err != nil {
		t.Fatal(err)
	}
	if recv[1] != 200 || recv[2] != 200 {
		t.Fatalf("received = %v", recv)
	}
}

func TestDuplicateHandlerRegistrationPanics(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 1, CacheSize: 4096, Seed: 1})
	sys := New(m, &nullProto{})
	sys.RegisterHandler(HandlerUserBase+30, func(np *NP, pkt *network.Packet) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sys.RegisterHandler(HandlerUserBase+30, func(np *NP, pkt *network.Packet) {})
}

func TestReservedHandlerIDPanics(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 1, CacheSize: 4096, Seed: 1})
	sys := New(m, &nullProto{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sys.RegisterHandler(2, func(np *NP, pkt *network.Packet) {})
}

func TestTagOpsThroughNP(t *testing.T) {
	m, sys := newNull(t, 1)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	if _, err := m.Run(func(p *machine.Proc) {
		p.ReadU64(seg.At(0)) // warm cache with the block
		np := sys.NP(0)
		// Drive tag ops from an injected "handler": use the NP context
		// via a message to self.
		const h = HandlerUserBase + 40
		_ = h
		_ = np
	}); err != nil {
		t.Fatal(err)
	}
	// The real tag-op coverage runs inside stache's tests; here we only
	// check the memory-visible effect of Invalidate via the map.
}

func TestRemoteMappedFramePanics(t *testing.T) {
	// A Typhoon page table must never point at a remote frame.
	m := machine.New(machine.Config{Nodes: 2, CacheSize: 4096, Seed: 1})
	New(m, &nullProto{})
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	// Sabotage: map node 1 to node 0's frame.
	pa, _, _ := m.VM.Translate(0, seg.At(0))
	m.VM.Table(1).Map(seg.At(0).VPN(), vm.PTE{PA: pa, Writable: true, Mode: vm.ModeUser})
	_, err := m.Run(func(p *machine.Proc) {
		if p.ID() == 1 {
			p.ReadU64(seg.At(0))
		}
	})
	if err == nil {
		t.Fatal("expected error for remote-mapped frame")
	}
}

func TestNPCountersFoldOnce(t *testing.T) {
	m, sys := newNull(t, 1)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	m.Mems[0].SetPageTags(mem.MakePA(0, 0), mem.TagInvalid)
	if _, err := m.Run(func(p *machine.Proc) {
		p.ReadU64(seg.At(0))
	}); err != nil {
		t.Fatal(err)
	}
	a := sys.Counters().Get("np.block_access_faults")
	b := sys.Counters().Get("np.block_access_faults")
	if a != b || a != 1 {
		t.Fatalf("counter folding not idempotent: %d then %d", a, b)
	}
}

func TestHandlerBudgetSanity(t *testing.T) {
	// The documented cost model must stay self-consistent.
	if DispatchCycles <= 0 || SendSetupCycles <= 0 || BlockXferCycles <= 0 {
		t.Fatal("cost constants must be positive")
	}
	if fmt.Sprintf("%d", TagOpCycles) != "2" {
		t.Fatalf("TagOpCycles changed: %d (stache budgets depend on it)", TagOpCycles)
	}
}

func TestTagOpsFromHandler(t *testing.T) {
	m, sys := newNull(t, 1)
	seg := m.AllocShared("x", mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	const hPoke = HandlerUserBase + 50
	var observed []mem.Tag
	sys.RegisterHandler(hPoke, func(np *NP, pkt *network.Packet) {
		va := mem.VA(pkt.Args[0])
		observed = append(observed, np.ReadTag(va))
		np.SetTag(va, mem.TagReadOnly)
		observed = append(observed, np.ReadTag(va))
		np.DowngradeCPU(va)
		np.ForceWriteU64(va, 777)
		if got := np.ForceReadU64(va); got != 777 {
			t.Errorf("force round trip = %d", got)
		}
		blk := np.ForceReadBlock(va)
		np.ForceWriteBlock(va, blk)
		np.Invalidate(va)
		observed = append(observed, np.ReadTag(va))
		np.SetPageTags(va, mem.TagReadWrite)
		observed = append(observed, np.ReadTag(va))
	})
	if _, err := m.Run(func(p *machine.Proc) {
		p.ReadU64(seg.At(0)) // cache the block so Invalidate purges it
		sys.Send(p, network.VNetRequest, 0, hPoke, []uint64{uint64(seg.At(0))}, nil)
		p.Ctx.Sleep(300)
		// The handler's Invalidate must have purged the CPU cache line:
		// this access misses (tag is now RW again -> local miss).
		t0 := p.Ctx.Time()
		p.ReadU64(seg.At(0))
		if d := p.Ctx.Time() - t0; d < 29 {
			t.Errorf("read after handler Invalidate cost %d; cache line not purged", d)
		}
	}); err != nil {
		t.Fatal(err)
	}
	want := []mem.Tag{mem.TagReadWrite, mem.TagReadOnly, mem.TagInvalid, mem.TagReadWrite}
	if len(observed) != len(want) {
		t.Fatalf("observed = %v", observed)
	}
	for i := range want {
		if observed[i] != want[i] {
			t.Fatalf("observed[%d] = %v, want %v", i, observed[i], want[i])
		}
	}
}

func TestDuplicatePageModePanics(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 1, CacheSize: 4096, Seed: 1})
	sys := New(m, &nullProto{}) // nullProto registers vm.ModeUser
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sys.RegisterPageMode(vm.ModeUser, PageModeOps{})
}

func TestPageFaultOutsideSharedPanics(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 1, CacheSize: 4096, Seed: 1})
	New(m, &nullProto{})
	_, err := m.Run(func(p *machine.Proc) {
		p.ReadU64(mem.VA(0x5000)) // private range, never mapped
	})
	if err == nil {
		t.Fatal("expected error for unmapped private access")
	}
}

func TestNPMemRefCacheBehaviour(t *testing.T) {
	m, sys := newNull(t, 1)
	const hRef = HandlerUserBase + 51
	var costs []sim.Time
	sys.RegisterHandler(hRef, func(np *NP, pkt *network.Packet) {
		addr := mem.MakePA(0, uint64(1)<<38)
		t0 := np.Time()
		np.MemRef(addr, false) // cold: local miss
		costs = append(costs, np.Time()-t0)
		t0 = np.Time()
		np.MemRef(addr, false) // warm read hit
		costs = append(costs, np.Time()-t0)
		t0 = np.Time()
		np.MemRef(addr, true) // write hit (exclusive fill)
		costs = append(costs, np.Time()-t0)
	})
	if _, err := m.Run(func(p *machine.Proc) {
		sys.Send(p, network.VNetRequest, 0, hRef, nil, nil)
		p.Ctx.Sleep(200)
	}); err != nil {
		t.Fatal(err)
	}
	if len(costs) != 3 || costs[0] != 29 || costs[1] != 1 || costs[2] != 1 {
		t.Fatalf("MemRef costs = %v, want [29 1 1]", costs)
	}
}

func TestBulkTransferAlignmentPanics(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 2, CacheSize: 4096, Seed: 1})
	sys := New(m, &nullProto{})
	src := m.AllocPrivate(0, 64)
	dst := m.AllocPrivate(1, 64)
	_, err := m.Run(func(p *machine.Proc) {
		if p.ID() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
			panic("rethrow")
		}()
		sys.BulkTransfer(p, 1, src+4, dst, 8)
	})
	if err == nil {
		t.Fatal("expected run error")
	}
}
