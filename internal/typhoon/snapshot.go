package typhoon

import (
	"hash/fnv"

	"github.com/tempest-sim/tempest/internal/agent"
	"github.com/tempest-sim/tempest/internal/mem"
)

// Core returns the NP's protocol-agent core. The conformance recorder
// uses it to tap message dispatches (agent.Core.OnDispatch) and to
// cross-check occupancy accounting against a standalone replay.
func (np *NP) Core() *agent.Core { return np.core }

// StateDigest folds the system's fine-grain access-control state — every
// node's mapped shared pages with their page mode and per-block tags —
// into one order-independent-of-nothing hash: segments, nodes, and pages
// are visited in a fixed order, so equal digests mean equal tag state.
// It must only be called while the machine is not running (protocol
// state is shard-local mid-run); the conformance suite records it after
// Run as part of a trace's footer.
func (s *System) StateDigest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, seg := range s.M.VM.Segments() {
		for node := 0; node < s.M.Cfg.Nodes; node++ {
			pt := s.M.VM.Table(node)
			for va := seg.Base.PageBase(); va < seg.End(); va += mem.PageSize {
				pte, ok := pt.Lookup(va.VPN())
				if !ok {
					continue
				}
				frame := s.M.Mems[pte.PA.Node()].Frame(pte.PA)
				w(uint64(node))
				w(uint64(va))
				w(uint64(frame.Mode))
				for _, t := range frame.Tags {
					w(uint64(t))
				}
			}
		}
	}
	return h.Sum64()
}
