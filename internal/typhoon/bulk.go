package typhoon

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/sim"
)

// BulkChunkBytes is the data payload of one bulk-transfer packet: a
// maximum-size twenty-word packet holds the receive handler PC, an
// address, 64 bytes of data, and two spare words (paper §5.2).
const BulkChunkBytes = 64

// bulkTransfer is one in-flight bulk data transfer, driven by the source
// NP's transfer thread. Completions carry no transfer ID — data packets
// must fit the 20-word limit — so each NP matches hBulkDone messages to
// its oldest outstanding transfer per destination (per-pair in-order
// delivery makes that exact).
type bulkTransfer struct {
	dst    int
	srcVA  mem.VA
	dstVA  mem.VA
	left   int
	done   bool
	waiter *machine.Proc
}

// Bulk is the initiator's handle on an asynchronous bulk transfer
// (§2.2): the transfer proceeds on the NP while the compute thread keeps
// running; Wait blocks until completion.
type Bulk struct {
	np *NP
	bt *bulkTransfer
}

// Done reports (by polling, §2.2) whether the transfer completed.
func (b *Bulk) Done() bool { return b.bt.done }

// Wait suspends the calling processor until the transfer completes.
func (b *Bulk) Wait(p *machine.Proc) {
	p.Ctx.Advance(1)
	for !b.bt.done {
		b.bt.waiter = p
		p.Ctx.Park("bulk transfer")
	}
	b.bt.waiter = nil
}

// BulkTransfer starts an asynchronous transfer of n bytes from srcVA on
// p's node to dstVA on node dst (§2.2, §5.2). The compute processor
// initiates it by messaging its own NP with the transfer parameters; the
// NP packetises the data in 64-byte chunks whenever no messages or faults
// are pending. Addresses must be 8-byte aligned.
func (s *System) BulkTransfer(p *machine.Proc, dst int, srcVA, dstVA mem.VA, n int) *Bulk {
	if srcVA%8 != 0 || dstVA%8 != 0 || n%8 != 0 {
		panic("typhoon: bulk transfers must be 8-byte aligned")
	}
	if n <= 0 {
		panic("typhoon: bulk transfer of zero bytes")
	}
	np := s.nps[p.ID()]
	bt := &bulkTransfer{
		dst:   dst,
		srcVA: srcVA,
		dstVA: dstVA,
		left:  n,
	}
	// The CPU sends the parameters to its own NP (§5.2); model the local
	// message cost and queue the transfer when it "arrives".
	p.Ctx.Advance(SendSetupCycles + 6*SendPerWordCycles)
	s.M.Eng.AfterFrom(1, p.ID(), func() {
		np.bulk = append(np.bulk, bt)
		np.bulkDone[dst] = append(np.bulkDone[dst], bt)
		np.ctx.Unpark(s.M.Eng.NowFor(np.node))
	})
	return &Bulk{np: np, bt: bt}
}

// runBulkChunk sends the next chunk of the oldest active transfer. It is
// called from the dispatch loop only when no message or fault is waiting,
// so transfers overlap computation without delaying protocol handling.
func (np *NP) runBulkChunk(c *sim.Context) {
	c.BeginNoBlock() // the transfer thread runs to completion like a handler
	defer c.EndNoBlock()
	bt := np.bulk[0]
	chunk := BulkChunkBytes
	if bt.left < chunk {
		chunk = bt.left
	}
	// Do not cross page boundaries in a single ReadRange/WriteRange.
	if room := int(mem.PageSize - bt.srcVA.PageOffset()); chunk > room {
		chunk = room
	}
	if room := int(mem.PageSize - bt.dstVA.PageOffset()); chunk > room {
		chunk = room
	}
	srcPA := np.mustTranslate(bt.srcVA)
	data := np.bulkScratch[:chunk]
	np.Mem().ReadRange(srcPA, data)
	bt.left -= chunk
	// The destination address is 8-byte aligned, so its low bit carries
	// the last-chunk flag: one arg keeps the packet at
	// 4 (handler) + 8 (arg) + 64 (data) = 76 bytes, within the
	// twenty-word limit — the paper's packet layout (§5.2).
	addrWord := uint64(bt.dstVA)
	if bt.left == 0 {
		addrWord |= 1
	}
	np.hot.bulkPackets++
	c.Advance(BlockXferCycles * sim.Time((chunk+31)/32))
	np.Send(network.VNetRequest, bt.dst, hBulkData, []uint64{addrWord}, data)
	bt.srcVA += mem.VA(chunk)
	bt.dstVA += mem.VA(chunk)
	if bt.left == 0 {
		copy(np.bulk, np.bulk[1:])
		np.bulk = np.bulk[:len(np.bulk)-1]
	}
}

// bulkDataHandler receives one chunk on the destination NP and
// force-writes it at the carried address (low bit = last-chunk flag).
func (np *NP) bulkDataHandler(pkt *network.Packet) {
	addrWord := pkt.Args[0]
	dstVA := mem.VA(addrWord &^ 1)
	last := addrWord&1 == 1
	pa := np.mustTranslate(dstVA)
	np.ctx.Advance(BlockXferCycles * sim.Time((len(pkt.Data)+31)/32))
	np.Mem().WriteRange(pa, pkt.Data)
	if last {
		np.SendReply(pkt.Src, hBulkDone, nil, nil)
	}
}

// bulkDoneHandler completes the oldest outstanding transfer to the
// completing destination (transfers to one destination finish in issue
// order because chunks are sent in order on one network).
func (np *NP) bulkDoneHandler(pkt *network.Packet) {
	q := np.bulkDone[pkt.Src]
	if len(q) == 0 {
		panic(fmt.Sprintf("typhoon: np%d bulk completion from %d with no outstanding transfer", np.node, pkt.Src))
	}
	bt := q[0]
	np.bulkDone[pkt.Src] = q[1:]
	np.ctx.Sync() // the compute thread polls done without a timed op
	bt.done = true
	np.ctx.Advance(1)
	if bt.waiter != nil {
		bt.waiter.Ctx.Unpark(np.ctx.Time())
	}
}

// Send queues an active message from the compute processor itself: the
// CPU writes the destination register, data words, and end-of-message
// marker across the MBus to the NP's separate CPU send queue (§5.1).
func (s *System) Send(p *machine.Proc, vnet network.VNet, dst int, handler uint32, args []uint64, data []byte) {
	cost := SendSetupCycles + SendPerWordCycles*sim.Time(1+2*len(args))
	if len(data) > 0 {
		cost += BlockXferCycles * sim.Time((len(data)+31)/32)
	}
	p.Ctx.Advance(cost)
	pkt := &network.Packet{
		Src: p.ID(), Dst: dst, VNet: vnet,
		Handler: handler, Args: args, Data: data,
	}
	if pkt.PayloadBytes() > network.MaxPayloadBytes {
		s.sendFragmented(p.Ctx.Advance, p.ID(), vnet, dst, handler, args, data)
		return
	}
	s.M.Net.Send(pkt)
}
