package typhoon

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/vm"
)

// These guards lock the zero-allocation property of the inline NP
// dispatch fast path — the engine invokes the dispatch loop's step
// function on the scheduler goroutine, so any allocation here lands on
// the hottest loop in the simulator. One step is one protocol dispatch:
// a message handler, a block-access-fault handler, or a bulk chunk.

// TestAllocFreeMessageDispatch measures a full user-level message
// round trip in steady state: CPU send, NP dispatch + handler on the
// remote node, reply dispatch + handler back home. Packets are pooled
// and handlers run inline, so the whole exchange must not allocate.
func TestAllocFreeMessageDispatch(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 2, CacheSize: 4096, Seed: 1})
	sys := New(m, &nullProto{})
	const hPing = HandlerUserBase + 1
	const hPong = HandlerUserBase + 2
	sys.RegisterHandler(hPing, func(np *NP, pkt *network.Packet) {
		np.Charge(3)
		np.SendReply(pkt.Src, hPong, pkt.Args[:1], nil)
	})
	pongs := 0
	sys.RegisterHandler(hPong, func(np *NP, pkt *network.Packet) {
		pongs++
	})
	args := []uint64{21}
	var allocs float64
	if _, err := m.Run(func(p *machine.Proc) {
		if p.ID() != 0 {
			return
		}
		allocs = testing.AllocsPerRun(100, func() {
			sys.Send(p, network.VNetRequest, 1, hPing, args, nil)
			p.Ctx.Sleep(100) // let both dispatches complete
		})
	}); err != nil {
		t.Fatal(err)
	}
	if pongs == 0 {
		t.Fatal("no pongs handled; the measurement exercised nothing")
	}
	if allocs != 0 {
		t.Errorf("message round trip allocates %.1f times per run, want 0", allocs)
	}
}

// TestAllocFreeFaultDispatch measures a block-access-fault round trip:
// the CPU's read misses on an invalid tag, the BAF is queued to the NP,
// the fault handler runs inline (grant + Resume), and the read retries.
// Each run faults on a fresh block so the fault path runs every time.
func TestAllocFreeFaultDispatch(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 1, CacheSize: 4096, Seed: 1})
	sys := New(m, &nullProto{})
	_ = sys
	seg := m.AllocShared("x", 2*mem.PageSize, vm.OnNode{Node: 0}, vm.ModeUser)
	m.Mems[0].SetPageTags(mem.MakePA(0, 0), mem.TagInvalid)
	m.Mems[0].SetPageTags(mem.MakePA(0, 1), mem.TagInvalid)
	var allocs float64
	if _, err := m.Run(func(p *machine.Proc) {
		next := 0
		read := func() {
			p.ReadU64(seg.At(uint64(next * mem.DefaultBlockSize)))
			next++
		}
		read() // warm the TLB and translation cache
		allocs = testing.AllocsPerRun(100, read)
	}); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("fault round trip allocates %.1f times per run, want 0", allocs)
	}
}

// TestAllocFreeBulkChunkDispatch measures the marginal allocation cost
// of one bulk-transfer chunk. Initiating a transfer allocates (the Bulk
// handle, the queue entry, the arrival event), so the guard compares a
// long transfer against a short one: the extra chunks — source-side
// chunk sends, destination-side data handlers, all dispatched inline —
// must not allocate at all.
func TestAllocFreeBulkChunkDispatch(t *testing.T) {
	m := machine.New(machine.Config{Nodes: 2, CacheSize: 4096, Seed: 1})
	sys := New(m, &nullProto{})
	srcVA := m.AllocPrivate(0, mem.PageSize)
	dstVA := m.AllocPrivate(1, mem.PageSize)
	const runs = 20
	const shortChunks, longChunks = 4, 36
	var short, long float64
	if _, err := m.Run(func(p *machine.Proc) {
		if p.ID() != 0 {
			return
		}
		transfer := func(chunks int) func() {
			n := chunks * BulkChunkBytes
			return func() {
				b := sys.BulkTransfer(p, 1, srcVA, dstVA, n)
				b.Wait(p)
			}
		}
		short = testing.AllocsPerRun(runs, transfer(shortChunks))
		long = testing.AllocsPerRun(runs, transfer(longChunks))
	}); err != nil {
		t.Fatal(err)
	}
	if perChunk := (long - short) / (longChunks - shortChunks); perChunk != 0 {
		t.Errorf("bulk chunk allocates %.2f times per chunk, want 0 (short transfer %.1f, long %.1f per run)",
			perChunk, short, long)
	}
}
