package typhoon

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/agent"
	"github.com/tempest-sim/tempest/internal/cache"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/sim"
	"github.com/tempest-sim/tempest/internal/stats"
	"github.com/tempest-sim/tempest/internal/trace"
	"github.com/tempest-sim/tempest/internal/vm"
)

// npHot is the NP's hot-path counter block (plain fields, folded into the
// system counters at report time).
type npHot struct {
	dispatches    uint64
	msgHandlers   uint64
	faultHandlers uint64
	bafs          uint64
	rtlbMisses    uint64
	tlbMisses     uint64
	sends         uint64
	instructions  uint64
	bulkPackets   uint64
	// pageFaults counts the node's user-level page faults. It lives in
	// the NP's hot stats (though the fault runs on the CPU) so the count
	// stays node-local — shard-local under sharded execution — instead
	// of contending on the system-wide counter map.
	pageFaults uint64
}

// NP is one node's network-interface processor: a user-level programmable
// integer core coupled to the network interface, with its own TLB, a
// reverse TLB for tag lookups, a data cache for handler state, and the
// block-transfer unit (paper Figure 2). Its dispatch loop is a protocol
// agent (internal/agent): the shared core drains the endpoint in
// priority order and the NP supplies the software dispatch/handler
// model on top.
type NP struct {
	sys  *System
	node int
	core *agent.Core
	ctx  *sim.Context
	ep   *network.Endpoint

	tlb    *cache.TLB   // NP virtual-address TLB
	rtlb   *cache.TLB   // reverse TLB: physical page -> tag residency
	dcache *cache.Cache // NP data cache (handler data structures)

	faults   faultRing
	bulk     []*bulkTransfer
	bulkDone map[int][]*bulkTransfer // outstanding transfers by destination
	frags    map[fragKey]*fragBuf

	// scratch is the block-transfer staging buffer (one CPU-cache block),
	// handed out by ForceReadBlockScratch; bulkScratch stages outgoing
	// bulk chunks. Handlers run to completion and Network.Send copies on
	// send, so one buffer of each per NP suffices.
	scratch     []byte
	bulkScratch [BulkChunkBytes]byte

	hot      npHot
	lastFold npHot
	// lastOccWaits/lastOccWaitCycles delta-fold the agent core's
	// occupancy-queueing stats, like lastFold does for hot.
	lastOccWaits      uint64
	lastOccWaitCycles uint64
}

// faultRing is a growable power-of-two ring of pending block access
// faults: FIFO pop without the copy-shift of a slice queue, and no
// allocation once at its high-water size.
type faultRing struct {
	buf        []Fault
	head, tail int
	n          int
}

func (r *faultRing) push(f Fault) {
	if r.n == len(r.buf) {
		size := len(r.buf) * 2
		if size == 0 {
			size = 8
		}
		buf := make([]Fault, size)
		for i := 0; i < r.n; i++ {
			buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf, r.head, r.tail = buf, 0, r.n
	}
	r.buf[r.tail] = f
	r.tail = (r.tail + 1) & (len(r.buf) - 1)
	r.n++
}

func (r *faultRing) pop() Fault {
	f := r.buf[r.head]
	r.buf[r.head] = Fault{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return f
}

// Node returns the NP's node ID.
func (np *NP) Node() int { return np.node }

// Time returns the NP's local clock (for unpark timestamps in custom
// protocol handlers).
func (np *NP) Time() sim.Time { return np.ctx.Time() }

// System returns the owning Typhoon system.
func (np *NP) System() *System { return np.sys }

// Machine returns the simulated machine.
func (np *NP) Machine() *machine.Machine { return np.sys.M }

// Mem returns the node's local memory. Every handler touch of simulated
// memory (data, tags, frames) comes through here, so a pending lazy
// yield materialises first: the access observes — and is observed in —
// exactly the scheduling order an eager yield would have produced.
func (np *NP) Mem() *mem.Memory {
	np.ctx.Sync()
	return np.sys.M.Mems[np.node]
}

// Sync materialises any pending lazy reschedule of the NP's dispatch
// loop at exactly this point. Protocol handlers call it before
// publishing state that the compute processor polls without an
// intervening timed operation (completion flags, received counters).
func (np *NP) Sync() { np.ctx.Sync() }

// Proc returns the node's compute processor.
func (np *NP) Proc() *machine.Proc { return np.sys.M.Procs[np.node] }

func (np *NP) postFault(f Fault) {
	np.faults.push(f)
	np.ctx.Unpark(f.Proc.Ctx.Time())
}

// DispatchMessage implements agent.Dispatcher: the software dispatch of
// one delivered message (paper §5.1). The dispatch hardware constructs a
// handler PC from the incoming message; the loop reads it and jumps.
// Every handler runs to completion. The agent core has already synced
// the NP's clock to the delivery time and frees the packet afterwards.
func (np *NP) DispatchMessage(c *sim.Context, pkt *network.Packet) {
	h, ok := np.sys.handlers[pkt.Handler]
	if !ok {
		panic(fmt.Sprintf("typhoon: np%d received message for unregistered handler %d", np.node, pkt.Handler))
	}
	np.hot.dispatches++
	np.hot.msgHandlers++
	if np.sys.tracer != nil {
		np.sys.tracer.Emit(trace.Event{T: c.Time(), Node: np.node, Kind: trace.KMsgRecv, Aux: uint64(pkt.Handler)})
	}
	c.Advance(DispatchCycles + np.sys.software.DispatchOverhead)
	t0 := c.Time()
	c.BeginNoBlock() // handlers run to completion: a Park in one is a bug
	h(np, pkt)
	c.EndNoBlock()
	if np.sys.software.StealHandlerCycles {
		c.Sync() // a resume's yield precedes publishing the stolen cycles
		np.sys.M.StealCycles(np.node, c.Time()-t0+np.sys.software.DispatchOverhead)
	}
}

// HasUrgent implements agent.Work: logged block access faults outrank
// request messages (but not replies).
func (np *NP) HasUrgent() bool { return np.faults.n > 0 }

// RunUrgent implements agent.Work: dispatch one logged fault.
func (np *NP) RunUrgent(c *sim.Context) { np.runFault(c, np.faults.pop()) }

// HasIdle implements agent.Work: the block-transfer thread runs only
// when no messages or faults are waiting (§5.2).
func (np *NP) HasIdle() bool { return len(np.bulk) > 0 }

// RunIdle implements agent.Work: move one bulk-transfer chunk.
func (np *NP) RunIdle(c *sim.Context) { np.runBulkChunk(c) }

func (np *NP) runFault(c *sim.Context, f Fault) {
	ops, ok := np.sys.modes[f.Mode]
	if !ok || ops.BlockFault == nil {
		panic(fmt.Sprintf("typhoon: np%d has no block-fault handler for mode %d (va %#x)", np.node, f.Mode, f.VA))
	}
	np.hot.dispatches++
	np.hot.faultHandlers++
	c.SyncTo(f.PostedAt)
	c.Advance(DispatchCycles + np.sys.software.DispatchOverhead)
	t0 := c.Time()
	c.BeginNoBlock()
	ops.BlockFault(np, f)
	c.EndNoBlock()
	if np.sys.software.StealHandlerCycles {
		c.Sync() // a resume's yield precedes publishing the stolen cycles
		np.sys.M.StealCycles(np.node, c.Time()-t0+np.sys.software.DispatchOverhead)
	}
}

// Charge accounts n handler instructions at one cycle each (paper §6).
func (np *NP) Charge(n int) {
	np.hot.instructions += uint64(n)
	np.ctx.Advance(sim.Time(n))
}

// MemRef times one handler data-structure reference (directory state,
// per-page bookkeeping) through the NP data cache: one cycle on a hit,
// a local memory access on a miss.
func (np *NP) MemRef(addr mem.PA, write bool) {
	hit, upgrade := np.dcache.Probe(addr, write)
	if hit {
		np.ctx.Advance(1)
		return
	}
	if upgrade {
		np.dcache.Upgrade(addr)
		np.ctx.Advance(1)
		return
	}
	np.dcache.Fill(addr, cache.LineExclusive)
	np.ctx.Advance(np.sys.M.Cfg.LocalMissCycles)
}

// Translate resolves va through the NP's TLB and the node's page table,
// charging the TLB refill on a miss. ok is false when the page is
// unmapped — a user programming error for NP handlers in the paper's
// model (§5.1); callers decide whether to panic or handle it.
func (np *NP) Translate(va mem.VA) (mem.PA, vm.PTE, bool) {
	np.ctx.Sync() // page tables are shared with the CPU's fault path
	if !np.tlb.Lookup(va.VPN()) {
		np.hot.tlbMisses++
		np.ctx.Advance(np.sys.M.Cfg.TLBMissCycles)
	}
	return np.sys.M.VM.Translate(np.node, va)
}

func (np *NP) mustTranslate(va mem.VA) mem.PA {
	pa, _, ok := np.Translate(va)
	if !ok {
		panic(fmt.Sprintf("typhoon: np%d handler touched unmapped address %#x (NP page fault is a user error, §5.1)", np.node, va))
	}
	return pa
}

// --- Fine-grain access control (Table 1, NP side) ---

// ReadTag returns va's block tag (Table 1: read-tag).
func (np *NP) ReadTag(va mem.VA) mem.Tag {
	pa := np.mustTranslate(va)
	np.chargeTagOp(pa)
	return np.Mem().Tag(pa)
}

// SetTag sets va's block tag (Table 1: set-RW / set-RO and Busy marking).
func (np *NP) SetTag(va mem.VA, t mem.Tag) {
	pa := np.mustTranslate(va)
	np.chargeTagOp(pa)
	if np.sys.tracer != nil {
		np.sys.tracer.Emit(trace.Event{T: np.ctx.Time(), Node: np.node, Kind: trace.KTagChange, VA: va, Aux: uint64(t)})
	}
	np.Mem().SetTag(pa, t)
}

// Invalidate sets va's block tag to Invalid and purges any copy from the
// local CPU cache via the bus (Table 1: invalidate; §5.4).
func (np *NP) Invalidate(va mem.VA) {
	pa := np.mustTranslate(va)
	np.chargeTagOp(pa)
	if np.sys.tracer != nil {
		// Traced like SetTag: with both paths emitting, the trace's
		// per-block KTagChange stream is the complete tag history, which
		// is what the conformance suite's MSI transition checker assumes.
		np.sys.tracer.Emit(trace.Event{T: np.ctx.Time(), Node: np.node, Kind: trace.KTagChange, VA: va, Aux: uint64(mem.TagInvalid)})
	}
	np.Mem().SetTag(pa, mem.TagInvalid)
	np.sys.M.Caches[np.node].Invalidate(pa)
}

// DowngradeCPU demotes the local CPU's cached copy of va's block to
// Shared (used when a home grants a read-only copy elsewhere while the
// local CPU holds the block owned).
func (np *NP) DowngradeCPU(va mem.VA) {
	pa := np.mustTranslate(va)
	// The CPU polls its cache state directly; a pending lazy yield must
	// land before the downgrade becomes visible (mustTranslate charges
	// nothing on a TLB hit, so it alone does not materialise one).
	np.ctx.Sync()
	np.sys.M.Caches[np.node].Downgrade(pa)
}

func (np *NP) chargeTagOp(pa mem.PA) {
	if !np.rtlb.Lookup(uint64(pa.FrameBase())) {
		np.hot.rtlbMisses++
		np.ctx.Advance(np.sys.M.Cfg.TLBMissCycles)
	}
	np.ctx.Advance(TagOpCycles)
}

// Resume restarts the suspended compute thread (Table 1: resume; §5.4
// unmasks the CPU's bus request line so it retries the transaction). The
// NP yields so the retried bus transaction wins arbitration over the
// NP's next handler — without this, a queued invalidation could steal
// the freshly installed block before the CPU consumes it, livelocking
// the faulting access. The yield is lazy: handler code after a resume
// only updates the NP's own bookkeeping, so the reschedule materialises
// at the NP's next timed operation or — usually — at the step boundary,
// where it costs no frame suspension and the dispatch stays inline.
func (np *NP) Resume(p *machine.Proc) {
	np.ctx.Advance(ResumeCycles)
	if np.sys.tracer != nil {
		np.sys.tracer.Emit(trace.Event{T: np.ctx.Time(), Node: np.node, Kind: trace.KResume})
	}
	p.Ctx.Unpark(np.ctx.Time())
	np.ctx.LazyYield()
}

// --- Force accesses (Table 1: force-read / force-write) ---
// NP memory accesses bypass RTLB tag checking (§5.4).

// ForceReadU64 reads a word regardless of tags.
func (np *NP) ForceReadU64(va mem.VA) uint64 {
	pa := np.mustTranslate(va)
	np.ctx.Advance(1)
	return np.Mem().ReadU64(pa)
}

// ForceWriteU64 writes a word regardless of tags.
func (np *NP) ForceWriteU64(va mem.VA, v uint64) {
	pa := np.mustTranslate(va)
	np.ctx.Advance(1)
	np.Mem().WriteU64(pa, v)
}

// ForceReadBlock copies va's whole block into a fresh buffer using the
// block-transfer unit.
func (np *NP) ForceReadBlock(va mem.VA) []byte {
	pa := np.mustTranslate(va)
	np.ctx.Advance(BlockXferCycles)
	buf := make([]byte, np.Mem().BlockSize())
	np.Mem().ReadBlock(pa, buf)
	return buf
}

// ForceReadBlockScratch is ForceReadBlock into the NP's block staging
// buffer: same timing, no allocation. The returned slice is valid only
// until the next scratch read on this NP — use it for read-and-send
// (Network.Send copies on send), not for data a handler holds across
// another block read.
func (np *NP) ForceReadBlockScratch(va mem.VA) []byte {
	pa := np.mustTranslate(va)
	np.ctx.Advance(BlockXferCycles)
	buf := np.scratch
	np.Mem().ReadBlock(pa, buf)
	return buf
}

// ForceWriteBlock writes a whole block regardless of tags, through the
// block-transfer unit (the data-arrival path of Stache, §3).
func (np *NP) ForceWriteBlock(va mem.VA, data []byte) {
	pa := np.mustTranslate(va)
	np.ctx.Advance(BlockXferCycles)
	np.Mem().WriteBlock(pa, data)
}

// --- Page state (the RTLB's uninterpreted per-page words, §5.4) ---

// FrameOf returns the frame backing va on this node, for access to the
// per-page protocol state (Home, User).
func (np *NP) FrameOf(va mem.VA) *mem.Frame {
	pa := np.mustTranslate(va)
	return np.Mem().Frame(pa)
}

// --- Messaging (§2.1, §5.1) ---

// Send queues an active message from this NP: setup plus one cycle per
// 32-bit word, with block payloads moved by the block-transfer unit.
// Messages exceeding the twenty-word packet limit are fragmented
// transparently (frag.go).
func (np *NP) Send(vnet network.VNet, dst int, handler uint32, args []uint64, data []byte) {
	np.hot.sends++
	if np.sys.tracer != nil {
		np.sys.tracer.Emit(trace.Event{T: np.ctx.Time(), Node: np.node, Kind: trace.KMsgSend, Aux: uint64(handler)})
	}
	cost := SendSetupCycles + SendPerWordCycles*sim.Time(1+2*len(args))
	if len(data) > 0 {
		cost += BlockXferCycles * sim.Time((len(data)+31)/32)
	}
	np.ctx.Advance(cost)
	pkt := &network.Packet{
		Src: np.node, Dst: dst, VNet: vnet,
		Handler: handler, Args: args, Data: data,
	}
	if pkt.PayloadBytes() > network.MaxPayloadBytes {
		np.sys.sendFragmented(np.ctx.Advance, np.node, vnet, dst, handler, args, data)
		return
	}
	np.sys.M.Net.Send(pkt)
}

// SendRequest sends on the low-priority request network.
func (np *NP) SendRequest(dst int, handler uint32, args []uint64, data []byte) {
	np.Send(network.VNetRequest, dst, handler, args, data)
}

// SendReply sends on the high-priority reply network.
func (np *NP) SendReply(dst int, handler uint32, args []uint64, data []byte) {
	np.Send(network.VNetReply, dst, handler, args, data)
}

func (np *NP) fold(c *stats.Counters) {
	d := np.hot
	l := np.lastFold
	c.Add("np.dispatches", d.dispatches-l.dispatches)
	c.Add("np.msg_handlers", d.msgHandlers-l.msgHandlers)
	c.Add("np.fault_handlers", d.faultHandlers-l.faultHandlers)
	c.Add("np.block_access_faults", d.bafs-l.bafs)
	c.Add("np.rtlb_misses", d.rtlbMisses-l.rtlbMisses)
	c.Add("np.tlb_misses", d.tlbMisses-l.tlbMisses)
	c.Add("np.sends", d.sends-l.sends)
	c.Add("np.instructions", d.instructions-l.instructions)
	c.Add("np.bulk_packets", d.bulkPackets-l.bulkPackets)
	c.Add("typhoon.page_faults", d.pageFaults-l.pageFaults)
	np.lastFold = d
	w, wc := np.core.OccStats()
	c.Add("np.occ_waits", w-np.lastOccWaits)
	c.Add("np.occ_wait_cycles", wc-np.lastOccWaitCycles)
	np.lastOccWaits, np.lastOccWaitCycles = w, wc
}

// ForceReadPage copies va's whole page into a fresh buffer via repeated
// block transfers (for page-grain custom protocols).
func (np *NP) ForceReadPage(va mem.VA) []byte {
	pa := np.mustTranslate(va.PageBase())
	np.ctx.Advance(BlockXferCycles * sim.Time(mem.PageSize/32))
	buf := make([]byte, mem.PageSize)
	np.Mem().ReadRange(pa, buf)
	return buf
}

// ForceWritePage writes a whole page regardless of tags.
func (np *NP) ForceWritePage(va mem.VA, data []byte) {
	if len(data) != mem.PageSize {
		panic(fmt.Sprintf("typhoon: ForceWritePage with %d bytes", len(data)))
	}
	pa := np.mustTranslate(va.PageBase())
	np.ctx.Advance(BlockXferCycles * sim.Time(mem.PageSize/32))
	np.Mem().WriteRange(pa, data)
}

// SetPageTags sets every block tag in va's page (one RTLB entry update).
func (np *NP) SetPageTags(va mem.VA, t mem.Tag) {
	pa := np.mustTranslate(va.PageBase())
	np.chargeTagOp(pa)
	np.Mem().SetPageTags(pa, t)
}
