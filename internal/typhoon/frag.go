package typhoon

import (
	"fmt"

	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/sim"
)

// Message fragmentation. A Tempest message whose payload exceeds the
// twenty-word packet limit (§5: block sizes may reach 128 bytes while a
// packet carries at most 64 data bytes) is split into a header packet
// plus data fragments. Per-sender in-order delivery and run-to-completion
// handlers guarantee the fragments of one message arrive consecutively
// from a given source, so reassembly state is per source node.

// fragChunk is the data bytes carried by one fragment packet.
const fragChunk = 64

// fragBuf is one in-progress reassembly.
type fragBuf struct {
	handler uint32
	vnet    network.VNet
	args    []uint64
	data    []byte
	want    int
}

// fragKey identifies one fragment stream: messages from a node's CPU and
// NP can be in flight to the same destination at once, so the source
// node alone is not enough.
type fragKey struct {
	src    int
	stream uint64
}

// sendFragmented splits an oversized message. The header carries the
// real handler, a stream ID, the argument words, and the total data
// length; each fragment carries the stream ID and up to fragChunk bytes.
// advance charges the sending context (the NP's clock, or the CPU's for
// processor-initiated sends).
func (s *System) sendFragmented(advance func(sim.Time), src int, vnet network.VNet, dst int, handler uint32, args []uint64, data []byte) {
	s.fragSeqs[src]++
	stream := s.fragSeqs[src]
	head := append([]uint64{uint64(handler), uint64(len(data)), stream}, args...)
	s.M.Net.Send(&network.Packet{
		Src: src, Dst: dst, VNet: vnet, Handler: hFragStart, Args: head,
	})
	for off := 0; off < len(data); off += fragChunk {
		end := off + fragChunk
		if end > len(data) {
			end = len(data)
		}
		advance(BlockXferCycles * sim.Time((end-off+31)/32))
		s.M.Net.Send(&network.Packet{
			Src: src, Dst: dst, VNet: vnet, Handler: hFragData,
			Args: []uint64{stream}, Data: data[off:end],
		})
	}
}

// fragStartHandler begins one stream's reassembly.
func (np *NP) fragStartHandler(pkt *network.Packet) {
	key := fragKey{src: pkt.Src, stream: pkt.Args[2]}
	if np.frags[key] != nil {
		panic(fmt.Sprintf("typhoon: np%d duplicate fragment stream %v", np.node, key))
	}
	np.ctx.Advance(2)
	np.frags[key] = &fragBuf{
		handler: uint32(pkt.Args[0]),
		vnet:    pkt.VNet,
		args:    append([]uint64(nil), pkt.Args[3:]...),
		want:    int(pkt.Args[1]),
	}
}

// fragDataHandler appends one fragment and, when complete, dispatches
// the reassembled message to its real handler.
func (np *NP) fragDataHandler(pkt *network.Packet) {
	key := fragKey{src: pkt.Src, stream: pkt.Args[0]}
	fb := np.frags[key]
	if fb == nil {
		panic(fmt.Sprintf("typhoon: np%d fragment for unknown stream %v", np.node, key))
	}
	np.ctx.Advance(BlockXferCycles * sim.Time((len(pkt.Data)+31)/32))
	fb.data = append(fb.data, pkt.Data...)
	if len(fb.data) < fb.want {
		return
	}
	delete(np.frags, key)
	h, ok := np.sys.handlers[fb.handler]
	if !ok {
		panic(fmt.Sprintf("typhoon: np%d reassembled message for unregistered handler %d", np.node, fb.handler))
	}
	h(np, &network.Packet{
		Src: pkt.Src, Dst: np.node, VNet: fb.vnet,
		Handler: fb.handler, Args: fb.args, Data: fb.data,
	})
}
