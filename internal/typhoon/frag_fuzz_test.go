package typhoon

import (
	"bytes"
	"testing"

	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/network"
)

// FuzzFragReassembly round-trips messages of arbitrary payload size
// through the Tempest send path: payloads within the twenty-word packet
// limit go out directly, larger ones through frag.go's packetisation and
// reassembly (the seeds pin the boundary, a multi-fragment block, and a
// page-sized transfer). The receive handler must observe exactly the
// argument words and data bytes that were sent, once.
func FuzzFragReassembly(f *testing.F) {
	f.Add([]byte{}, uint64(0), uint64(1))                          // header-only message
	f.Add(bytes.Repeat([]byte{0xAB}, 32), uint64(2), uint64(7))    // one cache block, direct
	f.Add(bytes.Repeat([]byte{0x01}, 68), uint64(1), uint64(3))    // exactly at the 80-byte limit
	f.Add(bytes.Repeat([]byte{0x02}, 69), uint64(1), uint64(3))    // one byte over: fragments
	f.Add(bytes.Repeat([]byte{0xCD}, 200), uint64(6), uint64(9))   // >20 words, several fragments
	f.Add(bytes.Repeat([]byte{0xEF}, 4096), uint64(4), uint64(11)) // page-sized transfer
	f.Fuzz(func(t *testing.T, data []byte, nargs uint64, argSeed uint64) {
		if len(data) > int(mem.PageSize) {
			data = data[:mem.PageSize]
		}
		// The fragment header carries [handler, len, stream] plus the
		// argument words in one packet, which bounds args at six.
		nargs %= 7
		args := make([]uint64, nargs)
		for i := range args {
			argSeed = argSeed*0x9E3779B97F4A7C15 + 1
			args[i] = argSeed
		}

		m := machine.New(machine.Config{Nodes: 2, CacheSize: 4096, Seed: 1})
		sys := New(m, &nullProto{})
		var got []struct {
			args []uint64
			data []byte
		}
		sys.RegisterHandler(HandlerUserBase, func(np *NP, pkt *network.Packet) {
			// Packets recycle when the handler returns: copy out.
			got = append(got, struct {
				args []uint64
				data []byte
			}{append([]uint64(nil), pkt.Args...), append([]byte(nil), pkt.Data...)})
		})
		if _, err := m.Run(func(p *machine.Proc) {
			if p.ID() == 0 {
				sys.Send(p, network.VNetRequest, 1, HandlerUserBase, args, data)
			}
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if len(got) != 1 {
			t.Fatalf("receiver saw %d messages, want 1 (data %d bytes, %d args)", len(got), len(data), len(args))
		}
		if len(got[0].args) != len(args) {
			t.Fatalf("got %d args, want %d", len(got[0].args), len(args))
		}
		for i := range args {
			if got[0].args[i] != args[i] {
				t.Errorf("arg %d: got %#x, want %#x", i, got[0].args[i], args[i])
			}
		}
		if !bytes.Equal(got[0].data, data) {
			t.Errorf("data mismatch: got %d bytes, want %d bytes", len(got[0].data), len(data))
		}
	})
}
