package agent

import (
	"testing"

	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/sim"
)

// fixedCostDispatcher charges a constant number of cycles per message
// and records each dispatch's start and end.
type fixedCostDispatcher struct {
	cost  sim.Time
	spans [][2]sim.Time
}

func (d *fixedCostDispatcher) DispatchMessage(c *sim.Context, pkt *network.Packet) {
	start := c.Time()
	c.Advance(d.cost)
	d.spans = append(d.spans, [2]sim.Time{start, c.Time()})
}

// TestOccupancyAccounting hand-computes the occupancy model under
// back-to-back deliveries — the exact arithmetic the conformance
// replay's counter cross-check relies on. Three packets sent on
// consecutive cycles arrive on consecutive cycles (latency 11). A
// message's wait is measured from the agent's own clock when it picks
// the message up (the clock has already advanced through the previous
// dispatch), not from the delivery cycle:
//
//	arrival 11: agent free, dispatch 11..13, busy until 11+occ=31
//	arrival 12: clock 13, busy 31-13=18 more cycles, dispatch 31..33,
//	            busy until 51
//	arrival 13: clock 33, busy 51-33=18, dispatch 51..53
//
// so occ_waits = 2 and occ_wait_cycles = 18 + 18 = 36. The dispatcher's
// 2-cycle cost is shorter than the 20-cycle occupancy, so busyUntil is
// governed by occupancy, not the dispatcher.
func TestOccupancyAccounting(t *testing.T) {
	const (
		latency = 11
		occ     = 20
		cost    = 2
	)
	eng := sim.NewEngine()
	net := network.New(eng, network.Config{Nodes: 2, Latency: latency})
	disp := &fixedCostDispatcher{cost: cost}
	core := Spawn(eng, net, 1, "agent1", "idle", occ, disp, nil)
	eng.SpawnOn(0, "sender", func(c *sim.Context) {
		for i := 0; i < 3; i++ {
			net.SendAfter(&network.Packet{Src: 0, Dst: 1, VNet: network.VNetRequest, Handler: 1}, sim.Time(i))
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	wantSpans := [][2]sim.Time{{11, 13}, {31, 33}, {51, 53}}
	if len(disp.spans) != len(wantSpans) {
		t.Fatalf("dispatched %d messages, want %d", len(disp.spans), len(wantSpans))
	}
	for i, span := range disp.spans {
		if span != wantSpans[i] {
			t.Errorf("dispatch %d ran %d..%d, want %d..%d", i, span[0], span[1], wantSpans[i][0], wantSpans[i][1])
		}
	}
	waits, waitCycles := core.OccStats()
	if waits != 2 || waitCycles != 36 {
		t.Errorf("OccStats = (%d, %d), want (2, 36)", waits, waitCycles)
	}
}

// TestOccupancyLongDispatch covers the other busyUntil branch: a
// dispatcher that runs longer than the occupancy window keeps the agent
// busy for its real duration — and because the agent's clock then
// already sits at the busy horizon, no occupancy wait is ever charged
// when the dispatch cost exceeds the occupancy.
func TestOccupancyLongDispatch(t *testing.T) {
	const (
		latency = 11
		occ     = 5
		cost    = 30
	)
	eng := sim.NewEngine()
	net := network.New(eng, network.Config{Nodes: 2, Latency: latency})
	disp := &fixedCostDispatcher{cost: cost}
	core := Spawn(eng, net, 1, "agent1", "idle", occ, disp, nil)
	eng.SpawnOn(0, "sender", func(c *sim.Context) {
		net.SendAfter(&network.Packet{Src: 0, Dst: 1, VNet: network.VNetRequest, Handler: 1}, 0)
		net.SendAfter(&network.Packet{Src: 0, Dst: 1, VNet: network.VNetRequest, Handler: 1}, 1)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// arrival 11: dispatch 11..41, busy until 41 (cost > occ)
	// arrival 12: clock already 41 = busyUntil, so no wait is counted;
	// dispatch 41..71 back to back
	wantSpans := [][2]sim.Time{{11, 41}, {41, 71}}
	if len(disp.spans) != len(wantSpans) {
		t.Fatalf("dispatched %d messages, want %d", len(disp.spans), len(wantSpans))
	}
	for i, span := range disp.spans {
		if span != wantSpans[i] {
			t.Errorf("dispatch %d ran %d..%d, want %d..%d", i, span[0], span[1], wantSpans[i][0], wantSpans[i][1])
		}
	}
	if waits, waitCycles := core.OccStats(); waits != 0 || waitCycles != 0 {
		t.Errorf("OccStats = (%d, %d), want (0, 0)", waits, waitCycles)
	}
}

// TestZeroOccupancy pins the legacy unbounded-concurrency behaviour:
// with occ zero, back-to-back deliveries never wait and the counters
// stay zero.
func TestZeroOccupancy(t *testing.T) {
	eng := sim.NewEngine()
	net := network.New(eng, network.Config{Nodes: 2, Latency: 11})
	disp := &fixedCostDispatcher{cost: 0}
	core := Spawn(eng, net, 1, "agent1", "idle", 0, disp, nil)
	eng.SpawnOn(0, "sender", func(c *sim.Context) {
		for i := 0; i < 3; i++ {
			net.SendAfter(&network.Packet{Src: 0, Dst: 1, VNet: network.VNetRequest, Handler: 1}, sim.Time(i))
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	wantSpans := [][2]sim.Time{{11, 11}, {12, 12}, {13, 13}}
	if len(disp.spans) != len(wantSpans) {
		t.Fatalf("dispatched %d messages, want %d", len(disp.spans), len(wantSpans))
	}
	for i, span := range disp.spans {
		if span != wantSpans[i] {
			t.Errorf("dispatch %d ran %d..%d, want %d..%d", i, span[0], span[1], wantSpans[i][0], wantSpans[i][1])
		}
	}
	if waits, waitCycles := core.OccStats(); waits != 0 || waitCycles != 0 {
		t.Errorf("OccStats = (%d, %d), want (0, 0)", waits, waitCycles)
	}
}
