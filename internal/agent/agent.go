// Package agent is the protocol-agent layer: the one execution skeleton
// shared by every per-node protocol engine in the simulator, hardware or
// software. A protocol agent is a stepper daemon bound to a node's
// network endpoint that drains delivered messages in priority order
// (replies before requests, paper §5.1), interleaves them with
// protocol-specific urgent work (logged block access faults) and idle
// work (bulk transfers), and parks when there is nothing to do. Typhoon's
// network-interface processor, the EM3D update protocol, Blizzard, and
// the DirNNB directory controller are all agents: the same dispatch
// loop models a software NP executing handlers and a hardware directory
// state machine — they differ only in what a message dispatch costs.
//
// The layer is what makes the protocols shard-safe by construction.
// An agent runs on its node's shard and touches only node-local state;
// everything between nodes travels through internal/network as events
// with the engine's stable key, so a protocol built on agents is
// deterministic at any shard count without protocol-specific locking.
package agent

import (
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/sim"
)

// Dispatcher consumes one delivered message. The core has already
// advanced the agent's clock to the packet's delivery time; the
// dispatcher charges whatever the dispatch and handler cost in its
// model (software dispatch cycles for an NP, directory occupancy for
// DirNNB) and must run to completion — it must not Park. The core frees
// the packet when the dispatcher returns, so a dispatcher that keeps
// payload bytes must copy them.
type Dispatcher interface {
	DispatchMessage(c *sim.Context, pkt *network.Packet)
}

// Work is the optional protocol-specific work an agent interleaves with
// message dispatch: urgent work preempts request messages (but not
// replies), idle work runs only when nothing else is pending. Typhoon
// maps logged block access faults to urgent and block-transfer chunks to
// idle; a pure message-driven agent (DirNNB) has none.
type Work interface {
	HasUrgent() bool
	RunUrgent(c *sim.Context)
	HasIdle() bool
	RunIdle(c *sim.Context)
}

// Core is one node's protocol agent: the dispatch loop, its stepper
// context, and the endpoint it drains. Protocol code embeds or holds a
// Core and supplies the Dispatcher (and optionally Work) behaviour.
type Core struct {
	node int
	net  *network.Network

	// Ctx is the agent's stepper context. Protocol code uses it for
	// node-local clock reads, charging, and unparking its own node's
	// compute processor.
	Ctx *sim.Context
	// Ep is the node's network endpoint; its Notify is wired to unpark
	// the agent on delivery.
	Ep *network.Endpoint

	disp Dispatcher
	work Work

	// Occupancy model (zero occ disables it, the legacy behaviour): the
	// agent is busy until busyUntil after each message dispatch, so
	// back-to-back dispatches serialise instead of being serviced with
	// unbounded concurrency. occWaits/occWaitCycles count the messages
	// that found the agent busy and the total cycles they waited — the
	// hot-home queueing the paper's §6 occupancy argument is about.
	occ           sim.Time
	busyUntil     sim.Time
	occWaits      uint64
	occWaitCycles uint64

	// OnDispatch, when non-nil, observes every completed message dispatch:
	// start is the cycle the dispatcher began (after delivery and any
	// occupancy wait) and end the agent's clock when it returned. It runs
	// on the agent's shard, before the packet is freed, so the callback
	// may read the packet but must not retain it. Set before Engine.Run
	// (the conformance recorder's tap); the dispatch path pays a nil
	// check otherwise.
	OnDispatch func(pkt *network.Packet, start, end sim.Time)
}

// Spawn creates node's protocol agent: a stepper daemon (named name,
// parking as idleReason) whose step drains the node's endpoint through
// disp, interleaved with work when non-nil. occ is the agent's service
// occupancy per message dispatch (machine.Config.OccupancyCycles; zero
// models infinite concurrency). All agents must be spawned before
// Engine.Run — on sharded engines contexts cannot be created mid-run —
// and in a deterministic order, since context identity feeds the
// scheduler's tie-breaking.
func Spawn(eng *sim.Engine, net *network.Network, node int, name, idleReason string, occ sim.Time, disp Dispatcher, work Work) *Core {
	co := &Core{node: node, net: net, Ep: net.Endpoint(node), disp: disp, work: work, occ: occ}
	co.Ep.Notify = co.notify
	co.Ctx = eng.SpawnStepperDaemonOn(node, name, co.step, idleReason)
	return co
}

// Node returns the agent's node ID.
func (co *Core) Node() int { return co.node }

func (co *Core) notify(at sim.Time) { co.Ctx.Unpark(at) }

// step is one iteration of the agent loop: replies outrank urgent work,
// which outranks requests, which outrank idle work; returning false
// parks the agent until the next delivery or an explicit unpark.
func (co *Core) step(c *sim.Context) bool {
	switch {
	case co.Ep.PendingOn(network.VNetReply) > 0:
		co.deliver(c, co.Ep.Dequeue())
	case co.work != nil && co.work.HasUrgent():
		co.work.RunUrgent(c)
	case co.Ep.PendingOn(network.VNetRequest) > 0:
		co.deliver(c, co.Ep.Dequeue())
	case co.work != nil && co.work.HasIdle():
		co.work.RunIdle(c)
	default:
		return false
	}
	return true
}

// OccStats returns the occupancy model's queueing at this agent: how
// many dispatches found the agent busy, and the total cycles they spent
// waiting for it. Both are zero when the agent charges no occupancy.
func (co *Core) OccStats() (waits, waitCycles uint64) {
	return co.occWaits, co.occWaitCycles
}

// deliver services one delivered packet: sync to the delivery instant,
// wait out any residual occupancy, dispatch, recycle. Everything here —
// the occupancy wait included — only moves the agent's local clock
// forward from the delivery time, so busy-until state never lets a
// reply leave earlier than the network's minimum cross-shard delivery
// promises: the engine's adaptive window bounds stay sound with the
// occupancy model enabled.
func (co *Core) deliver(c *sim.Context, pkt *network.Packet) {
	c.SyncTo(pkt.DeliveredAt) // the agent was waiting, not time-travelling
	if co.occ > 0 && co.busyUntil > c.Time() {
		// The previous dispatch still occupies the agent: the message
		// waits, delivered but unserviced, until the agent frees up.
		co.occWaits++
		co.occWaitCycles += uint64(co.busyUntil - c.Time())
		c.SyncTo(co.busyUntil)
	}
	start := c.Time()
	co.disp.DispatchMessage(c, pkt)
	if co.OnDispatch != nil {
		co.OnDispatch(pkt, start, c.Time())
	}
	// Dispatchers run to completion and copy any payload they keep, so
	// the packet recycles the moment the dispatch returns.
	co.net.Free(pkt)
	if co.occ > 0 {
		// The agent stays occupied occ cycles from dispatch start; a
		// dispatcher that already advanced further (a long software
		// handler) is busy for its real duration instead. Occupancy
		// covers message service only — urgent and idle work charge
		// their own costs.
		if end := start + co.occ; end > c.Time() {
			co.busyUntil = end
		} else {
			co.busyUntil = c.Time()
		}
	}
}
