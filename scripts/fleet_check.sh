#!/usr/bin/env bash
# fleet-check: the distributed-sweep digest gate.
#
# Runs the reduced bench sweep through a standalone fleet coordinator
# and two local workers over a unix socket — with one worker rigged to
# die after its second lease — and requires the output digest to match
# the committed golden exactly. This pins the whole fleet contract at
# once: lease/heartbeat/reassignment under a real worker loss, result
# verification against canonical cache keys, group sequencing through
# the remote client, and bit-identical results versus the local pool.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT
sock="$tmp/fleet.sock"

go build -o "$tmp/fleet" ./cmd/fleet
go build -o "$tmp/bench" ./cmd/bench

"$tmp/fleet" coordinator -addr "$sock" -quiet &

# Worker 1 exits(1) right after its second lease — the injected
# mid-run loss the coordinator must absorb by re-leasing its work.
# Worker 2 runs two slots and survives to finish the sweep. Both
# retry the dial, so start order doesn't matter.
"$tmp/fleet" worker -addr "$sock" -die-after-leases 2 -quiet &
"$tmp/fleet" worker -addr "$sock" -j 2 -quiet &

"$tmp/bench" -fleet "$sock" -check testdata/bench.digest

echo "fleet-check: digest ok through coordinator + 2 workers (one killed mid-run)"
