// A user-level custom coherence protocol built on the Tempest interface
// (the paper's §4 argument: "memory systems should provide mechanisms
// that compilers can compose into efficient solutions").
//
// The workload is a read-only table published by node 0 and scanned by
// every other node. Under the general-purpose Stache protocol each
// 32-byte block faults separately: a fault, a request, and a data reply
// per block. The custom protocol knows the table is written once and
// read whole, so its block-fault handler fetches the entire page in one
// exchange and tags every block ReadOnly — a page-grain "bulk fill"
// protocol in ~80 lines of user-level handler code.
//
//	go run ./examples/custom-protocol
package main

import (
	"fmt"
	"log"

	tempest "github.com/tempest-sim/tempest"
)

const (
	// Page modes and message handlers compose with Stache's: the table
	// segment uses our mode, everything else stays on Stache.
	modeTableHome   = 100 // custom home page
	modeTableRemote = 101 // custom remote page

	hTableGet  = 64 // fetch request: one whole page
	hTableData = 65 // reply: page contents
)

// tableProtocol layers the page-grain protocol over Stache.
type tableProtocol struct {
	*tempest.Stache
	sys *tempest.TyphoonSystem
	// One outstanding fault per node (the compute thread suspends).
	pending []tempest.VA
}

func newTableProtocol() *tableProtocol {
	return &tableProtocol{Stache: tempest.NewStacheProtocol()}
}

func (t *tableProtocol) Name() string { return "page-grain-table" }

func (t *tableProtocol) Attach(sys *tempest.TyphoonSystem) {
	t.Stache.Attach(sys)
	t.sys = sys
	t.pending = make([]tempest.VA, sys.M.Cfg.Nodes)

	sys.RegisterPageMode(modeTableHome, tempest.PageModeOps{
		// A remote node touched an unmapped table page: map a local
		// copy with every block Invalid, then let the access retry.
		PageFault: func(sys *tempest.TyphoonSystem, p *tempest.Proc, va tempest.VA, write bool) {
			if write {
				panic("table pages are read-only for consumers")
			}
			p.Compute(100)
			node := p.ID()
			m := sys.M
			pa, err := m.Mems[node].AllocFrame(tempest.TagInvalid)
			if err != nil {
				panic(err)
			}
			frame := m.Mems[node].Frame(pa)
			frame.Mode = modeTableRemote
			frame.Home = m.VM.Home(va)
			m.VM.Table(node).MapPage(va, pa, modeTableRemote)
		},
		BlockFault: func(np *tempest.NP, f tempest.BlockFault) {
			panic("home table pages are always ReadWrite at the home")
		},
	})
	sys.RegisterPageMode(modeTableRemote, tempest.PageModeOps{
		BlockFault: func(np *tempest.NP, f tempest.BlockFault) {
			// Ask the home for the WHOLE page, not just this block.
			page := f.VA &^ tempest.VA(tempest.PageSize-1)
			t.pending[np.Node()] = page
			np.SetTag(f.VA, tempest.TagBusy)
			np.Charge(10)
			np.SendRequest(np.FrameOf(f.VA).Home, hTableGet, []uint64{uint64(page)}, nil)
		},
	})

	sys.RegisterHandler(hTableGet, func(np *tempest.NP, pkt *tempest.Packet) {
		page := tempest.VA(pkt.Args[0])
		data := np.ForceReadPage(page)
		np.Charge(20)
		np.SendReply(pkt.Src, hTableData, []uint64{uint64(page)}, data)
	})
	sys.RegisterHandler(hTableData, func(np *tempest.NP, pkt *tempest.Packet) {
		page := tempest.VA(pkt.Args[0])
		if t.pending[np.Node()] != page {
			panic("unexpected table page")
		}
		np.ForceWritePage(page, pkt.Data)
		np.SetPageTags(page, tempest.TagReadOnly)
		np.Charge(20)
		np.Resume(np.Proc())
	})
}

func (t *tableProtocol) SetupSegment(seg *tempest.Segment) {
	if seg.Mode != modeTableHome {
		t.Stache.SetupSegment(seg)
		return
	}
	m := t.sys.M
	for i := 0; i < seg.Pages(); i++ {
		va := seg.Base + tempest.VA(i*tempest.PageSize)
		home := m.VM.Home(va)
		pa, err := m.Mems[home].AllocFrame(tempest.TagReadWrite)
		if err != nil {
			panic(err)
		}
		frame := m.Mems[home].Frame(pa)
		frame.Mode = modeTableHome
		frame.Home = home
		m.VM.Table(home).MapPage(va, pa, modeTableHome)
	}
}

const (
	nodes      = 8
	tableBytes = 16 << 10 // 4 pages of published data
)

func run(custom bool) (cycles uint64, faults uint64) {
	cfg := tempest.DefaultConfig()
	cfg.Nodes = nodes

	var m *tempest.Machine
	mode := 0
	if custom {
		m, _ = tempest.NewTyphoon(cfg, newTableProtocol())
		mode = modeTableHome
	} else {
		m, _ = tempest.NewTyphoonStache(cfg)
	}
	table := m.AllocShared("table", tableBytes, tempest.OnNode{Node: 0}, mode)

	res, err := m.Run(func(p *tempest.Proc) {
		if p.ID() == 0 {
			for off := uint64(0); off < tableBytes; off += 8 {
				p.WriteU64(table.At(off), off*3)
			}
		}
		p.Barrier()
		// Every other node scans the whole table.
		if p.ID() != 0 {
			var sum uint64
			for off := uint64(0); off < tableBytes; off += 8 {
				sum += p.ReadU64(table.At(off))
			}
			if want := uint64(3 * 8 * ((tableBytes/8 - 1) * (tableBytes / 8) / 2)); sum != want {
				log.Fatalf("node %d: sum %d, want %d", p.ID(), sum, want)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return uint64(res.Cycles), res.Counters.Get("np.block_access_faults")
}

func main() {
	stacheCycles, stacheFaults := run(false)
	customCycles, customFaults := run(true)
	fmt.Printf("scan of a %d KB published table by %d consumers:\n", tableBytes>>10, nodes-1)
	fmt.Printf("  Stache (per-block):      %8d cycles, %5d block faults\n", stacheCycles, stacheFaults)
	fmt.Printf("  custom (page-grain):     %8d cycles, %5d block faults\n", customCycles, customFaults)
	fmt.Printf("  custom protocol speedup: %.2fx\n", float64(stacheCycles)/float64(customCycles))
}
