// Dynamic load balancing with user-level synchronization: a shared work
// queue whose index is a fetch-and-add counter served by an NP handler
// (the synchronization-primitives extension the paper's §2 footnote
// sketches), with the next task's data prefetched through Stache's Busy
// tags while the current task computes.
//
//	go run ./examples/workqueue
package main

import (
	"fmt"
	"log"

	tempest "github.com/tempest-sim/tempest"
)

const (
	nodes     = 8
	tasks     = 256
	taskWords = 16 // 128 bytes of input per task
)

func run(usePrefetch bool) (cycles uint64, verified bool) {
	cfg := tempest.DefaultConfig()
	cfg.Nodes = nodes
	cfg.CacheSize = 4 << 10

	m, st := tempest.NewTyphoonStache(cfg)
	sys := tempest.TyphoonOf(m)
	sync := tempest.NewSync(sys, 1, 1)

	// Task inputs, spread round-robin; results, one word per task.
	in := m.AllocShared("in", tasks*taskWords*8, tempest.RoundRobin{}, 0)
	out := m.AllocShared("out", tasks*8, tempest.RoundRobin{}, 0)

	res, err := m.Run(func(p *tempest.Proc) {
		// Node 0 publishes the task inputs.
		if p.ID() == 0 {
			for t := 0; t < tasks; t++ {
				for w := 0; w < taskWords; w++ {
					p.WriteU64(in.At(uint64((t*taskWords+w)*8)), uint64(t*w+t+1))
				}
			}
		}
		p.Barrier()

		// Workers pull task indices from the shared counter: dynamic,
		// self-balancing distribution with no locks around the data.
		for {
			t := int(sync.FetchAdd(p, 0, 1))
			if t >= tasks {
				break
			}
			// The first word's demand fetch maps the task's page.
			sum := p.ReadU64(in.At(uint64(t * taskWords * 8)))
			if usePrefetch {
				// The task spans four coherence blocks; hint the last
				// three so they stream in while the first block's words
				// are consumed (prefetch needs the page mapped, which
				// the demand fetch above just did).
				for b := 1; b < taskWords*8/tempest.DefaultBlockSize; b++ {
					st.Prefetch(p, in.At(uint64(t*taskWords*8+b*tempest.DefaultBlockSize)))
				}
			}
			for w := 1; w < taskWords; w++ {
				sum += p.ReadU64(in.At(uint64((t*taskWords + w) * 8)))
				p.Compute(8) // per-word work, overlapping the prefetches
			}
			p.Compute(100) // the task's "work"
			p.WriteU64(out.At(uint64(t*8)), sum)
		}
		p.Barrier()
		// Node 0 audits every result: each task computed exactly once.
		if p.ID() == 0 {
			for t := 0; t < tasks; t++ {
				var want uint64
				for w := 0; w < taskWords; w++ {
					want += uint64(t*w + t + 1)
				}
				if got := p.ReadU64(out.At(uint64(t * 8))); got != want {
					log.Fatalf("task %d: result %d, want %d", t, got, want)
				}
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    [prefetches issued=%d filled=%d joined-demand=%d remote-faults=%d]\n",
		res.Counters.Get("stache.prefetches"),
		res.Counters.Get("stache.prefetch_fills"),
		res.Counters.Get("stache.prefetches")-res.Counters.Get("stache.prefetch_fills"),
		res.Counters.Get("stache.remote_faults"))
	return uint64(res.Cycles), true
}

func main() {
	plain, _ := run(false)
	pf, _ := run(true)
	fmt.Printf("%d tasks over %d workers via fetch-and-add work stealing:\n", tasks, nodes)
	fmt.Printf("  without prefetch: %8d cycles\n", plain)
	delta := 100 * (1 - float64(pf)/float64(plain))
	word := "faster"
	if delta < 0 {
		delta, word = -delta, "slower"
	}
	fmt.Printf("  with prefetch:    %8d cycles (%.1f%% %s)\n", pf, delta, word)
}
