// Quickstart: transparent shared memory on Typhoon/Stache.
//
// An unmodified shared-memory program — a parallel stencil relaxation —
// runs on the simulated Typhoon machine with the user-level Stache
// protocol providing coherence, exactly as the paper's §3 promises:
// "existing shared-memory programs only need to be linked with the
// Stache library".
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tempest "github.com/tempest-sim/tempest"
)

const (
	nodes = 8
	n     = 64 // grid dimension
	iters = 4
)

func main() {
	cfg := tempest.DefaultConfig()
	cfg.Nodes = nodes
	cfg.CacheSize = 16 << 10

	m, st := tempest.NewTyphoonStache(cfg)

	// One shared grid plus a scratch copy, allocated round-robin across
	// the machine — no placement tuning; Stache replicates hot pages
	// into each node's local memory on demand.
	grid := m.AllocShared("grid", n*n*8, tempest.RoundRobin{}, 0)
	next := m.AllocShared("next", n*n*8, tempest.RoundRobin{}, 0)
	at := func(seg *tempest.Segment, i, j int) tempest.VA {
		return seg.At(uint64((i*n + j) * 8))
	}

	res, err := m.Run(func(p *tempest.Proc) {
		// Each processor owns a band of rows.
		rows := (n + p.N() - 1) / p.N()
		lo, hi := p.ID()*rows, (p.ID()+1)*rows
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				p.WriteF64(at(grid, i, j), float64((i*j)%7))
			}
		}
		p.Barrier()

		src, dst := grid, next
		for it := 0; it < iters; it++ {
			for i := lo; i < hi; i++ {
				if i == 0 || i == n-1 {
					continue
				}
				for j := 1; j < n-1; j++ {
					v := 0.25 * (p.ReadF64(at(src, i-1, j)) +
						p.ReadF64(at(src, i+1, j)) +
						p.ReadF64(at(src, i, j-1)) +
						p.ReadF64(at(src, i, j+1)))
					p.Compute(4)
					p.WriteF64(at(dst, i, j), v)
				}
			}
			p.Barrier()
			src, dst = dst, src
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.CheckInvariants(); err != nil {
		log.Fatalf("coherence invariants: %v", err)
	}

	fmt.Printf("ran %dx%d stencil, %d iterations on %d nodes (%s)\n", n, n, iters, nodes, m.Sys.Name())
	fmt.Printf("  execution time:      %d cycles\n", res.Cycles)
	fmt.Printf("  stache page faults:  %d\n", res.Counters.Get("stache.page_faults"))
	fmt.Printf("  block access faults: %d\n", res.Counters.Get("np.block_access_faults"))
	fmt.Printf("  coherence messages:  %d\n",
		res.Counters.Get("net.packets.request")+res.Counters.Get("net.packets.reply"))
}
