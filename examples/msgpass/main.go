// Message passing on Tempest: active messages and bulk data transfer,
// with no shared-memory overhead (the paper's first extreme: "Tempest
// does not impose shared-memory overhead on these message-passing
// programs", §1).
//
// The program measures an active-message ping-pong and then overlaps a
// bulk transfer with computation (§2.2).
//
//	go run ./examples/msgpass
package main

import (
	"fmt"
	"log"

	tempest "github.com/tempest-sim/tempest"
)

// nullProtocol provides no shared memory at all: this is a pure
// message-passing program.
type nullProtocol struct{}

func (nullProtocol) Name() string                      { return "none" }
func (nullProtocol) Attach(sys *tempest.TyphoonSystem) {}
func (nullProtocol) SetupSegment(seg *tempest.Segment) {
	panic("msgpass: this program does not use shared memory")
}

const (
	hPing = 16 + iota // tempest.HandlerUserBase
	hPong
)

func main() {
	cfg := tempest.DefaultConfig()
	cfg.Nodes = 2

	m, sys := tempest.NewTyphoon(cfg, nullProtocol{})

	// Active-message handlers run on the NPs: the ping handler bounces
	// the payload straight back without involving node 1's CPU.
	sys.RegisterHandler(hPing, func(np *tempest.NP, pkt *tempest.Packet) {
		np.Charge(4)
		np.SendReply(pkt.Src, hPong, []uint64{pkt.Args[0]}, nil)
	})
	var pongs int
	var waiting *tempest.Proc
	sys.RegisterHandler(hPong, func(np *tempest.NP, pkt *tempest.Packet) {
		pongs++
		if waiting != nil {
			waiting.Ctx.Unpark(np.Time())
		}
	})

	const rounds = 32
	const bulkBytes = 64 << 10

	src := m.AllocPrivate(0, bulkBytes)
	dst := m.AllocPrivate(1, bulkBytes)

	res, err := m.Run(func(p *tempest.Proc) {
		if p.ID() != 0 {
			return // node 1 participates purely through its NP
		}
		// Ping-pong latency.
		t0 := p.Ctx.Time()
		for i := 0; i < rounds; i++ {
			sys.Send(p, tempest.VNetRequest, 1, hPing, []uint64{uint64(i)}, nil)
			waiting = p
			for pongs <= i {
				p.Ctx.Park("await pong")
			}
			waiting = nil
		}
		rtt := (p.Ctx.Time() - t0) / rounds
		fmt.Printf("active-message round trip: %d cycles\n", rtt)

		// Bulk transfer overlapping computation.
		t0 = p.Ctx.Time()
		b := sys.BulkTransfer(p, 1, src, dst, bulkBytes)
		p.Compute(20000)
		b.Wait(p)
		fmt.Printf("64 KB bulk transfer overlapped with 20k-cycle compute: %d cycles total\n", p.Ctx.Time()-t0)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network packets: %d requests, %d replies\n",
		res.Counters.Get("net.packets.request"),
		res.Counters.Get("net.packets.reply"))
	fmt.Printf("bulk packets streamed by the NP: %d\n", res.Counters.Get("np.bulk_packets"))
}
