// Package tempest is a simulation library reproducing "Tempest and
// Typhoon: User-Level Shared Memory" (Reinhardt, Larus, and Wood,
// ISCA 1994).
//
// The package simulates two 32-node parallel machines built from the same
// workstation-like nodes and network:
//
//   - Typhoon: each node adds a user-level programmable network-interface
//     processor (NP) that implements the Tempest interface — low-overhead
//     active messages, bulk data transfer, user-level virtual-memory
//     management, and fine-grain access control over tagged 32-byte
//     memory blocks. Shared memory is provided by user-level protocol
//     libraries: the bundled Stache protocol (transparent shared memory
//     over local-DRAM caching of remote data) or application-specific
//     protocols such as the EM3D delayed-update protocol.
//
//   - DirNNB: a conventional all-hardware directory cache-coherence
//     machine, the paper's baseline.
//
// Programs are written as SPMD bodies against Proc, whose loads, stores,
// barriers, and message operations all charge simulated cycles. Runs are
// deterministic: the same configuration always produces bit-identical
// results.
//
// Quick start:
//
//	cfg := tempest.DefaultConfig()
//	cfg.Nodes = 8
//	m, _ := tempest.NewTyphoonStache(cfg)
//	data := m.AllocShared("data", 1<<20, tempest.RoundRobin{}, 0)
//	res, err := m.Run(func(p *tempest.Proc) {
//	    p.WriteU64(data.At(uint64(8*p.ID())), uint64(p.ID()))
//	    p.Barrier()
//	    _ = p.ReadU64(data.At(uint64(8 * ((p.ID() + 1) % p.N()))))
//	})
package tempest

import (
	"github.com/tempest-sim/tempest/internal/blizzard"
	"github.com/tempest-sim/tempest/internal/dirnnb"
	"github.com/tempest-sim/tempest/internal/machine"
	"github.com/tempest-sim/tempest/internal/mem"
	"github.com/tempest-sim/tempest/internal/network"
	"github.com/tempest-sim/tempest/internal/stache"
	"github.com/tempest-sim/tempest/internal/stats"
	"github.com/tempest-sim/tempest/internal/trace"
	"github.com/tempest-sim/tempest/internal/tsync"
	"github.com/tempest-sim/tempest/internal/typhoon"
	"github.com/tempest-sim/tempest/internal/vm"
)

// Core machine types.
type (
	// Config carries the Table 2 simulation parameters.
	Config = machine.Config
	// Machine is one simulated target system.
	Machine = machine.Machine
	// Proc is the SPMD programming surface: one simulated processor.
	Proc = machine.Proc
	// Result summarises one run.
	Result = machine.Result
	// Segment is a shared-memory allocation.
	Segment = vm.Segment
	// Counters is the named event-count set in a Result.
	Counters = stats.Counters
)

// Address and tag types.
type (
	// VA is a simulated virtual address.
	VA = mem.VA
	// Tag is a fine-grain access tag (Table 1 of the paper).
	Tag = mem.Tag
)

// Tag values.
const (
	TagInvalid   = mem.TagInvalid
	TagReadOnly  = mem.TagReadOnly
	TagReadWrite = mem.TagReadWrite
	TagBusy      = mem.TagBusy
)

// Page and block geometry.
const (
	// PageSize is the virtual-memory page size in bytes.
	PageSize = mem.PageSize
	// DefaultBlockSize is the default coherence-block size in bytes.
	DefaultBlockSize = mem.DefaultBlockSize
)

// Placement policies for shared segments.
type (
	// RoundRobin homes consecutive pages on consecutive nodes.
	RoundRobin = vm.RoundRobin
	// Blocked gives each node one contiguous run of pages.
	Blocked = vm.Blocked
	// OnNode homes the whole segment on one node.
	OnNode = vm.OnNode
	// FirstTouch homes each page on the first node to touch it
	// (DirNNB only).
	FirstTouch = vm.FirstTouch
)

// Typhoon extension surface, for building custom user-level protocols on
// the Tempest interface (the paper's §4).
type (
	// TyphoonSystem exposes the Tempest mechanisms and registries.
	TyphoonSystem = typhoon.System
	// NP is one node's network-interface processor, the execution
	// context of message and fault handlers.
	NP = typhoon.NP
	// TyphoonProtocol is a user-level memory-system policy.
	TyphoonProtocol = typhoon.Protocol
	// PageModeOps holds the fault handlers for one page mode.
	PageModeOps = typhoon.PageModeOps
	// BlockFault describes one block access fault.
	BlockFault = typhoon.Fault
	// Packet is an active message.
	Packet = network.Packet
	// Handler is a user-level message handler running on an NP.
	Handler = typhoon.Handler
	// Bulk is a handle on an asynchronous bulk data transfer.
	Bulk = typhoon.Bulk
	// Stache is the bundled transparent-shared-memory protocol.
	Stache = stache.Protocol
	// StacheOption configures the Stache library.
	StacheOption = stache.Option
	// Tracer records protocol-level events for debugging (attach with
	// WithTracer when building a Typhoon machine).
	Tracer = trace.Tracer
	// TraceEvent is one recorded protocol event.
	TraceEvent = trace.Event
)

// Virtual networks for user-level messaging.
const (
	// VNetRequest is the low-priority request network.
	VNetRequest = network.VNetRequest
	// VNetReply is the high-priority reply network.
	VNetReply = network.VNetReply
)

// DefaultConfig returns the paper's Table 2 parameters: 32 nodes, 256 KB
// 4-way CPU caches, 32-byte blocks, 64-entry TLBs, and the published
// latency set.
func DefaultConfig() Config { return machine.DefaultConfig() }

// NewTyphoonStache builds a Typhoon machine running the Stache
// transparent-shared-memory protocol (the paper's Typhoon/Stache
// system). The returned Stache handle exposes protocol statistics and
// the coherence invariant checker.
func NewTyphoonStache(cfg Config, opts ...StacheOption) (*Machine, *Stache) {
	m := machine.New(cfg)
	st := stache.New(opts...)
	typhoon.New(m, st)
	return m, st
}

// NewTyphoon builds a Typhoon machine running a custom user-level
// protocol. Most custom protocols embed or compose Stache (see
// examples/custom-protocol). Options attach tracing or configure a
// software Tempest implementation.
func NewTyphoon(cfg Config, proto TyphoonProtocol, opts ...typhoon.Option) (*Machine, *TyphoonSystem) {
	m := machine.New(cfg)
	sys := typhoon.New(m, proto, opts...)
	return m, sys
}

// WithTracer attaches a protocol-event tracer to a Typhoon machine built
// with NewTyphoon.
func WithTracer(tr *Tracer) typhoon.Option { return typhoon.WithTracer(tr) }

// NewTracer returns a tracer retaining up to max events (0 = a large
// default).
func NewTracer(max int) *Tracer { return trace.New(max) }

// NewDirNNB builds the all-hardware DirNNB baseline machine.
func NewDirNNB(cfg Config) *Machine {
	m := machine.New(cfg)
	dirnnb.New(m)
	return m
}

// BlizzardConfig tunes the software Tempest implementation's costs; the
// zero value selects the defaults.
type BlizzardConfig = blizzard.Config

// NewBlizzardStache builds a software Tempest machine (no NP hardware:
// inline access checks plus handlers on the main processor — the
// paper's §2 "native version for existing machines", later published as
// Blizzard) running the unmodified Stache library.
func NewBlizzardStache(cfg Config, bcfg BlizzardConfig, opts ...StacheOption) (*Machine, *Stache) {
	m := machine.New(cfg)
	st := stache.New(opts...)
	blizzard.New(m, st, bcfg)
	return m, st
}

// StacheMaxPages bounds each node's stache-page budget, enabling FIFO
// page replacement.
func StacheMaxPages(n int) StacheOption { return stache.WithMaxPages(n) }

// StacheMigratory enables migratory-sharing detection: read-then-write
// blocks are granted exclusively on reads, collapsing the fetch+upgrade
// double round trip. Off by default (the paper's Stache is the baseline).
func StacheMigratory() StacheOption { return stache.WithMigratory() }

// TyphoonOf returns the Typhoon system behind a machine, or nil when the
// machine is a DirNNB system. Applications use it to reach the Tempest
// messaging and bulk-transfer mechanisms.
func TyphoonOf(m *Machine) *TyphoonSystem {
	sys, _ := m.Sys.(*typhoon.System)
	return sys
}

// NewStacheProtocol returns an unattached Stache protocol instance for
// composition into custom protocols (embed it and override Attach,
// SetupSegment, and Name; see examples/custom-protocol).
func NewStacheProtocol(opts ...StacheOption) *Stache { return stache.New(opts...) }

// SyncManager provides user-level synchronization primitives — FIFO
// queue locks and fetch-and-add counters served by NP message handlers —
// the extension the paper's §2 footnote sketches.
type SyncManager = tsync.Manager

// NewSync registers a SyncManager with nLocks locks and nCounters
// counters on a Typhoon system. Call before Machine.Run.
func NewSync(sys *TyphoonSystem, nLocks, nCounters int) *SyncManager {
	return tsync.New(sys, nLocks, nCounters)
}
