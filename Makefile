# Developer and CI entry points. `make ci` is what the GitHub Actions
# workflow runs: vet, build, and the full test suite under the race
# detector (the parallel harness runner depends on -race staying green).

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
