# Developer and CI entry points. `make ci` is what the GitHub Actions
# workflow runs: vet, build, the full test suite under the race detector
# (the parallel harness runner and the sharded engine depend on -race
# staying green), a one-iteration benchmark smoke pass, the digest gate
# at one shard and at two (sharded execution must be bit-identical), and
# the fuzz targets' committed seed corpora.

GO ?= go

.PHONY: ci vet build test race bench bench-warm microbench bench-smoke bench-parallel digest-check cache-check fleet-check profile fuzz-seeds conform

ci: vet build race bench-smoke digest-check bench-parallel cache-check fleet-check fuzz-seeds conform

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the performance sweep twice — the ideal machine and the
# pinned contended configuration (4 B/cycle links, 20-cycle agents) —
# and appends one labelled entry per configuration (seconds per app +
# output digest + link-bw/occupancy fields) to BENCH_sim.json.
bench:
	$(GO) run ./cmd/bench -label "$${BENCH_LABEL:-dev}"
	$(GO) run ./cmd/bench -label "$${BENCH_LABEL:-dev}-contended" -link-bw 4 -occupancy 20

# bench-warm times the result cache: a cold sweep that populates a
# fresh cache directory, then a warm sweep served entirely from it
# (-expect-cached fails if anything simulates). Both append labelled
# entries to BENCH_sim.json, so the cold-vs-warm speedup is on record.
bench-warm:
	rm -rf .bench-cache.tmp
	$(GO) run ./cmd/bench -cache-dir .bench-cache.tmp -label "$${BENCH_LABEL:-dev}-cold"
	$(GO) run ./cmd/bench -cache-dir .bench-cache.tmp -label "$${BENCH_LABEL:-dev}-warm" -expect-cached
	rm -rf .bench-cache.tmp

# microbench runs the per-figure/table Go benchmarks.
microbench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-smoke compiles and runs every benchmark for exactly one
# iteration: catches bit-rotted benchmark code without paying for timing.
bench-smoke:
	$(GO) test -run=NoTests -bench=. -benchtime=1x ./...

# digest-check runs the bench sweep and compares its output digest to
# the committed goldens — any drift means simulated results changed.
# The legacy golden pins the contention-free machine; the contended
# golden pins the 4 B/cycle, 20-cycle-occupancy configuration. SHARDS
# > 1 runs each simulation's nodes across that many scheduler
# goroutines; neither digest may move.
digest-check:
	$(GO) run ./cmd/bench -shards "$${SHARDS:-1}" -check testdata/bench.digest
	$(GO) run ./cmd/bench -shards "$${SHARDS:-1}" -link-bw 4 -occupancy 20 -check testdata/bench_contended.digest

# bench-parallel is the sharded-execution smoke: the same digest gates
# with every simulation split across two and four scheduler shards.
# Identical output is the determinism guarantee of the windowed engine —
# adaptive lookahead planning and contention model included. Four shards
# exercises the planner's two-smallest base scan off its degenerate
# 2-shard case and the multi-token grant path.
bench-parallel:
	$(GO) run ./cmd/bench -shards 2 -check testdata/bench.digest
	$(GO) run ./cmd/bench -shards 2 -link-bw 4 -occupancy 20 -check testdata/bench_contended.digest
	$(GO) run ./cmd/bench -shards 4 -check testdata/bench.digest
	$(GO) run ./cmd/bench -shards 4 -link-bw 4 -occupancy 20 -check testdata/bench_contended.digest

# cache-check is the result-cache gate: a cold sweep against the pinned
# digest populates a fresh cache directory; the warm re-run must produce
# the same digest without simulating anything (-expect-cached fails on
# any miss or store); a second warm run re-simulates every hit
# (-cache-verify 1.0) and fails on the first divergence.
cache-check:
	rm -rf .cache-check.tmp
	$(GO) run ./cmd/bench -cache-dir .cache-check.tmp -check testdata/bench.digest
	$(GO) run ./cmd/bench -cache-dir .cache-check.tmp -check testdata/bench.digest -expect-cached
	$(GO) run ./cmd/bench -cache-dir .cache-check.tmp -check testdata/bench.digest -expect-cached -cache-verify 1.0
	rm -rf .cache-check.tmp

# fleet-check is the distributed-sweep gate: the reduced bench sweep
# through a fleet coordinator and two local workers over a unix socket,
# with one worker killed mid-run, must reproduce the committed digest —
# lease reassignment, result verification, and remote group sequencing
# all on the hook.
fleet-check:
	bash scripts/fleet_check.sh

# profile runs the bench sweep under the CPU and allocation profilers;
# inspect with `go tool pprof cpu.prof` / `go tool pprof mem.prof`.
profile:
	$(GO) run ./cmd/bench -check testdata/bench.digest -cpuprofile cpu.prof -memprofile mem.prof
	@echo "profiles written: cpu.prof mem.prof (go tool pprof <file>)"

# fuzz-seeds executes the committed seed corpora of the fuzz targets as
# ordinary tests (no fuzzing engine; deterministic).
fuzz-seeds:
	$(GO) test -run='^Fuzz' ./internal/typhoon/ ./internal/stats/ ./internal/trace/ ./internal/conform/ ./internal/resultcache/ ./internal/fleet/

# conform is the trace-replay conformance gate: verify the committed
# corpus (manifest, decode, standalone replay, tag-machine check), then
# run the differential protocol matrix at one shard and — under the race
# detector — at two. `go run ./cmd/conform -record` re-records the
# corpus on the full machine; it is covered by the package's
# re-record tests under `make race`, so the gate here stays fast.
conform:
	$(GO) run ./cmd/conform
	$(GO) run ./cmd/conform -diff -shards 1
	$(GO) run -race ./cmd/conform -diff -shards 2
