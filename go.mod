module github.com/tempest-sim/tempest

go 1.22
